//! Phase 3 — optimal crossbar synthesis (the paper's §6 algorithm).
//!
//! Two steps:
//!
//! 1. **Configuration search (MILP-1)** — binary search over the bus count
//!    for the minimum size whose feasibility MILP (Eq. 3–9) admits a
//!    solution. Feasibility is monotone in the bus count (any binding
//!    remains valid with extra buses), so binary search is sound.
//! 2. **Optimal binding (MILP-2)** — for the minimum size, minimise
//!    `maxov`, the maximum aggregate pairwise overlap on any single bus
//!    (Eq. 11), which is what reduces average and peak latency.
//!
//! Every feasibility probe runs on the word-parallel bitset conflict
//! graph produced by phase 2 (see [`stbus_traffic::ConflictGraph`] and
//! [`stbus_milp::binding`]), and the binary search starts from the
//! greedy-coloring clique bound — the two changes that let phase 3 scale
//! to SoCs several times larger than the paper suite.

use crate::params::DesignParams;
use crate::phase2::Preprocessed;
use stbus_milp::{Binding, HeuristicOptions, NodeLimitExceeded};
use stbus_sim::CrossbarConfig;
use std::fmt;

/// Which solving engine produced a [`SynthesisOutcome`].
///
/// Mostly informational, but [`crate::synthesizer::Portfolio`] callers use
/// it to detect that the exact search ran out of budget and the heuristic
/// fallback supplied the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthesisEngine {
    /// The exact backtracking solver (optimality/infeasibility proofs).
    Exact,
    /// The greedy + local-search heuristic (no proofs).
    Heuristic,
}

impl fmt::Display for SynthesisEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisEngine::Exact => write!(f, "exact"),
            SynthesisEngine::Heuristic => write!(f, "heuristic"),
        }
    }
}

/// Result of the synthesis phase for one crossbar direction.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// The designed configuration.
    pub config: CrossbarConfig,
    /// The optimal binding backing the configuration.
    pub binding: Binding,
    /// Number of buses in the design.
    pub num_buses: usize,
    /// The lower bound the binary search started from.
    pub lower_bound: usize,
    /// Bus counts probed by the binary search, with their feasibility.
    pub probes: Vec<(usize, bool)>,
    /// The minimised maximum per-bus overlap (`maxov`).
    pub max_bus_overlap: u64,
    /// The engine that produced this outcome.
    pub engine: SynthesisEngine,
}

/// Synthesises the minimum crossbar and its optimal binding.
///
/// # Errors
///
/// Propagates [`NodeLimitExceeded`] if the exact solver exhausts its
/// node budget (raise [`DesignParams::solve_limits`] for pathological
/// instances).
pub fn synthesize(
    pre: &Preprocessed,
    params: &DesignParams,
) -> Result<SynthesisOutcome, NodeLimitExceeded> {
    let n = pre.stats.num_targets();
    if n == 0 {
        return Ok(SynthesisOutcome {
            config: CrossbarConfig::from_assignment(Vec::new(), 1)
                .expect("empty assignment is valid"),
            binding: Binding::from_assignment(Vec::new()),
            num_buses: 1,
            lower_bound: 1,
            probes: Vec::new(),
            max_bus_overlap: 0,
            engine: SynthesisEngine::Exact,
        });
    }

    // Binary search the minimum feasible bus count in [lb, n]. A full
    // crossbar (one bus per target) is always feasible because the window
    // analysis guarantees comm(i,m) ≤ WS.
    let mut lo = pre.bus_lower_bound();
    let mut hi = n;
    let mut probes = Vec::new();
    let mut best_feasible: Option<(usize, Binding)> = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let problem = pre.binding_problem(mid);
        match problem.find_feasible(&params.solve_limits)? {
            Some(binding) => {
                probes.push((mid, true));
                best_feasible = Some((mid, binding));
                hi = mid;
            }
            None => {
                probes.push((mid, false));
                lo = mid + 1;
            }
        }
    }
    let num_buses = lo;

    // MILP-2: optimal binding at the minimum size.
    let problem = pre.binding_problem(num_buses);
    let binding = match problem.optimize(&params.solve_limits)? {
        Some(b) => b,
        None => {
            // lo == hi == n and the loop never probed n: fall back to the
            // last feasible probe or the trivially feasible full binding.
            match best_feasible {
                Some((buses, b)) if buses == num_buses => b,
                _ => {
                    let full: Vec<usize> = (0..n).collect();
                    Binding::from_assignment(full)
                }
            }
        }
    };

    let config = CrossbarConfig::from_assignment(binding.assignment().to_vec(), num_buses)
        .expect("solver produced a valid assignment")
        .with_arbitration(params.arbitration);
    let max_bus_overlap = binding.max_bus_overlap();
    Ok(SynthesisOutcome {
        config,
        num_buses,
        lower_bound: pre.bus_lower_bound(),
        probes,
        binding,
        max_bus_overlap,
        engine: SynthesisEngine::Exact,
    })
}

/// Heuristic variant of the synthesis phase: scans bus counts upward from
/// the lower bound using the greedy + local-search solver of
/// [`stbus_milp::heuristic`]. Polynomial time, but without optimality or
/// infeasibility proofs — intended for large design-space sweeps where the
/// exact search is too slow; the `solver_ablation` experiment quantifies
/// the quality gap (none, on the paper suites).
///
/// # Errors
///
/// Never fails with the default heuristic options; the `Result` mirrors
/// [`synthesize`] so callers can swap the two paths freely.
pub fn synthesize_heuristic(
    pre: &Preprocessed,
    params: &DesignParams,
) -> Result<SynthesisOutcome, NodeLimitExceeded> {
    synthesize_heuristic_with(pre, params, &HeuristicOptions::default())
}

/// [`synthesize_heuristic`] with explicit [`HeuristicOptions`] — the entry
/// point [`crate::synthesizer::Heuristic`] plumbs its options through.
///
/// # Errors
///
/// Never fails; the `Result` mirrors [`synthesize`].
pub fn synthesize_heuristic_with(
    pre: &Preprocessed,
    params: &DesignParams,
    options: &HeuristicOptions,
) -> Result<SynthesisOutcome, NodeLimitExceeded> {
    let n = pre.stats.num_targets();
    if n == 0 {
        return synthesize(pre, params);
    }
    let lower_bound = pre.bus_lower_bound();
    let mut probes = Vec::new();
    for buses in lower_bound..=n {
        let problem = pre.binding_problem(buses);
        match stbus_milp::solve_heuristic(&problem, options) {
            Some(binding) => {
                probes.push((buses, true));
                let config = CrossbarConfig::from_assignment(binding.assignment().to_vec(), buses)
                    .expect("heuristic produced a valid assignment")
                    .with_arbitration(params.arbitration);
                let max_bus_overlap = binding.max_bus_overlap();
                return Ok(SynthesisOutcome {
                    config,
                    num_buses: buses,
                    lower_bound,
                    probes,
                    binding,
                    max_bus_overlap,
                    engine: SynthesisEngine::Heuristic,
                });
            }
            None => probes.push((buses, false)),
        }
    }
    // The full crossbar always fits; greedy construction cannot miss it.
    let full: Vec<usize> = (0..n).collect();
    let binding = Binding::from_assignment(full);
    let config = CrossbarConfig::from_assignment(binding.assignment().to_vec(), n)
        .expect("full binding valid")
        .with_arbitration(params.arbitration);
    Ok(SynthesisOutcome {
        config,
        num_buses: n,
        lower_bound,
        probes,
        binding,
        max_bus_overlap: 0,
        engine: SynthesisEngine::Heuristic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_traffic::{InitiatorId, TargetId, Trace, TraceEvent};

    fn params(ws: u64, threshold: f64) -> DesignParams {
        DesignParams::default()
            .with_window_size(ws)
            .with_overlap_threshold(threshold)
    }

    fn pre_of(trace: &Trace, p: &DesignParams) -> Preprocessed {
        Preprocessed::analyze(trace, p)
    }

    #[test]
    fn single_idle_target_gets_one_bus() {
        let mut tr = Trace::new(1, 1);
        tr.push(TraceEvent::new(
            InitiatorId::new(0),
            TargetId::new(0),
            0,
            10,
        ));
        let p = params(100, 0.5);
        let out = synthesize(&pre_of(&tr, &p), &p).unwrap();
        assert_eq!(out.num_buses, 1);
        assert!(out.config.is_full());
    }

    #[test]
    fn bandwidth_forces_minimum_size() {
        // Three targets, each 60 busy cycles in the same 100-cycle window:
        // 180/100 → at least 2 buses; pairwise any two = 120 > 100 → 3.
        let mut tr = Trace::new(3, 3);
        for t in 0..3 {
            tr.push(TraceEvent::new(
                InitiatorId::new(t),
                TargetId::new(t),
                0,
                60,
            ));
        }
        let p = params(100, 1.0); // threshold above 0.6 → no conflicts
        let out = synthesize(&pre_of(&tr, &p), &p).unwrap();
        assert_eq!(out.num_buses, 3);
    }

    #[test]
    fn disjoint_traffic_shares_one_bus() {
        // Four targets active in different windows → one bus suffices
        // (maxtb = 4 allows it).
        let mut tr = Trace::new(1, 4);
        for t in 0..4 {
            tr.push(TraceEvent::new(
                InitiatorId::new(0),
                TargetId::new(t),
                (t as u64) * 100,
                90,
            ));
        }
        let p = params(100, 0.5);
        let out = synthesize(&pre_of(&tr, &p), &p).unwrap();
        assert_eq!(out.num_buses, 1);
        assert_eq!(out.config.max_targets_per_bus(), 4);
    }

    #[test]
    fn maxtb_caps_sharing() {
        let mut tr = Trace::new(1, 4);
        for t in 0..4 {
            tr.push(TraceEvent::new(
                InitiatorId::new(0),
                TargetId::new(t),
                (t as u64) * 100,
                90,
            ));
        }
        let p = params(100, 0.5).with_maxtb(2);
        let out = synthesize(&pre_of(&tr, &p), &p).unwrap();
        assert_eq!(out.num_buses, 2);
        assert!(out.config.max_targets_per_bus() <= 2);
    }

    #[test]
    fn conflicts_expand_the_crossbar() {
        // Two targets with full overlap and a tight threshold must split.
        let mut tr = Trace::new(2, 2);
        tr.push(TraceEvent::new(
            InitiatorId::new(0),
            TargetId::new(0),
            0,
            40,
        ));
        tr.push(TraceEvent::new(
            InitiatorId::new(1),
            TargetId::new(1),
            0,
            40,
        ));
        let loose = params(100, 0.5);
        let out = synthesize(&pre_of(&tr, &loose), &loose).unwrap();
        assert_eq!(out.num_buses, 1);
        let tight = params(100, 0.1);
        let out = synthesize(&pre_of(&tr, &tight), &tight).unwrap();
        assert_eq!(out.num_buses, 2);
    }

    #[test]
    fn binding_satisfies_all_constraints() {
        let app = stbus_traffic::workloads::matrix::mat2(11);
        let p = DesignParams::default();
        let collected = crate::phase1::collect(&app, &p);
        let pre = pre_of(&collected.it_trace, &p);
        let out = synthesize(&pre, &p).unwrap();
        let problem = pre.binding_problem(out.num_buses);
        assert_eq!(
            problem.verify(&out.binding),
            Some(out.max_bus_overlap),
            "synthesised binding violates its own constraints"
        );
    }

    #[test]
    fn minimality_certificate() {
        // The probe list must contain an infeasible probe at num_buses-1
        // or the lower bound must equal num_buses.
        let app = stbus_traffic::workloads::matrix::mat2(13);
        let p = DesignParams::default();
        let collected = crate::phase1::collect(&app, &p);
        let pre = pre_of(&collected.it_trace, &p);
        let out = synthesize(&pre, &p).unwrap();
        if out.num_buses > out.lower_bound {
            assert!(
                out.probes.contains(&(out.num_buses - 1, false)),
                "no infeasibility certificate below the chosen size"
            );
        }
        // And the chosen size itself must be feasible.
        let problem = pre.binding_problem(out.num_buses);
        assert!(problem.find_feasible(&p.solve_limits).unwrap().is_some());
    }

    #[test]
    fn heuristic_matches_exact_on_mat2() {
        let app = stbus_traffic::workloads::matrix::mat2(17);
        let p = DesignParams::default().with_overlap_threshold(0.15);
        let collected = crate::phase1::collect(&app, &p);
        let pre = pre_of(&collected.it_trace, &p);
        let exact = synthesize(&pre, &p).unwrap();
        let heuristic = synthesize_heuristic(&pre, &p).unwrap();
        assert_eq!(heuristic.num_buses, exact.num_buses);
        // The heuristic's objective must verify and stay close to optimal.
        let problem = pre.binding_problem(heuristic.num_buses);
        assert_eq!(
            problem.verify(&heuristic.binding),
            Some(heuristic.max_bus_overlap)
        );
        assert!(heuristic.max_bus_overlap <= 2 * exact.max_bus_overlap.max(1));
    }

    #[test]
    fn empty_system() {
        let tr = Trace::new(0, 0);
        let p = params(100, 0.3);
        let out = synthesize(&pre_of(&tr, &p), &p).unwrap();
        assert_eq!(out.num_buses, 1);
        assert!(out.binding.assignment().is_empty());
    }
}
