//! Application-specific STbus crossbar generation — the design methodology
//! of Murali & De Micheli, *"An Application-Specific Design Methodology for
//! STbus Crossbar Generation"*, DATE 2005.
//!
//! Given an application's traffic, the methodology designs the smallest
//! STbus partial crossbar that satisfies the application's performance
//! constraints, and the optimal binding of targets onto its buses. It
//! proceeds in the four phases of the paper's Fig. 3:
//!
//! 1. **Traffic collection** ([`phase1`]) — simulate the application on a
//!    *full* crossbar and record the arbitrated traffic trace;
//! 2. **Pre-processing** ([`phase2`]) — window-based analysis of the trace
//!    (a sweep-line pass over sorted interval endpoints): per-window
//!    bandwidth `comm(i,m)`, pairwise overlaps `wo(i,j,m)`, the bitset
//!    conflict graph from the overlap threshold and critical-stream
//!    clashes, and the `maxtb` cap;
//! 3. **Synthesis** ([`phase3`]) — binary search for the minimum feasible
//!    bus count (MILP-1) followed by optimal binding minimising the maximum
//!    per-bus overlap (MILP-2);
//! 4. **Validation** ([`phase4`]) — cycle-accurate simulation of the
//!    application on the designed crossbar.
//!
//! Both the initiator→target and target→initiator crossbars are designed
//! (the response path is derived from request completions). [`baselines`]
//! provides the comparison designs used throughout the paper's evaluation:
//! average-flow design, peak-bandwidth (contention-elimination) design,
//! random binding, shared bus and full crossbar.
//!
//! # Quick start — the staged pipeline
//!
//! The flow is a pipeline of typed, reusable artifacts. Collect once
//! (phase 1, the expensive reference simulation), then analyze,
//! synthesize and validate as often as the exploration needs:
//!
//! ```
//! use stbus_core::pipeline::{BaselineSet, Pipeline};
//! use stbus_core::synthesizer::Exact;
//! use stbus_core::DesignParams;
//! use stbus_traffic::workloads;
//!
//! let app = workloads::matrix::mat2(42);
//! let params = DesignParams::default();
//!
//! let collected = Pipeline::collect(&app, &params);        // phase 1
//! let report = collected
//!     .analyze(&params)                                    // phase 2
//!     .synthesize(&Exact::default())                       // phase 3
//!     .expect("synthesis succeeds")
//!     .report()                                            // phase 4
//!     .expect("validation succeeds");
//!
//! // The designed crossbar uses far fewer buses than the full crossbar…
//! assert!(report.designed.total_buses() < report.full.total_buses());
//! // …while keeping latency within a small factor of it.
//! assert!(report.designed.avg_latency < 4.0 * report.full.avg_latency);
//!
//! // Sweeps reuse the collection artifact and pick their baselines:
//! let aggressive = params.clone().with_overlap_threshold(0.10);
//! let lean = collected
//!     .analyze(&aggressive)
//!     .synthesize(&Exact::default())
//!     .expect("synthesis succeeds")
//!     .validate(&BaselineSet::none())                      // no baselines
//!     .expect("validation succeeds");
//! assert!(lean.baselines.is_empty());
//! ```
//!
//! [`DesignFlow::run`] remains as the one-call convenience wrapper over
//! exactly this pipeline. [`Batch`] evaluates `applications × parameter
//! grid` in parallel, collecting once per application. Synthesis
//! strategies ([`synthesizer::Exact`], [`synthesizer::Heuristic`],
//! [`synthesizer::Portfolio`]) plug into phase 3 via the
//! [`synthesizer::Synthesizer`] trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod batch;
/// The process-wide work-stealing executor every parallel layer of the
/// toolkit runs on — the [`crate::Batch`] design-space stages, the
/// phase-3 [`ProbeScheduler`]'s speculative probes, the
/// [`synthesizer::Portfolio`] exact-vs-heuristic race and the
/// heuristic's annealing-repair restarts all submit tasks to the same
/// worker set, so inner work fills whatever cores the outer layer left
/// idle instead of stacking a second pool.
///
/// The executor schedules at **two priority levels**: work enters the
/// per-worker deques / global injector as usual, and a consumer that
/// knows which result it needs next bumps that one task into a priority
/// lane with [`exec::TaskScope::promote`] — the probe scheduler promotes
/// its consume-next feasibility probe so speculative backlog never
/// starves the critical path. Promotion is a scheduling hint only;
/// claim-once tickets keep every result bit-identical in any drain
/// order. **Streaming scopes** ([`exec::map_streaming`]) deliver results
/// to a sink in input order as they complete with a bounded look-ahead
/// window — the [`crate::Batch`] runner streams finished design points
/// and the gateway streams sweep rows without materialising the whole
/// output first.
///
/// This is a re-export of the bottom-layer `stbus-exec` crate (it sits
/// below `stbus-milp` so the solver layers can poll its
/// [`exec::CancelToken`]); see that crate's documentation for the
/// determinism contract (results land by submission order; width 1 is a
/// sequential loop), the cancellation contract (hierarchical cooperative
/// tokens) and the `STBUS_EXEC_WORKERS` sizing override.
pub mod exec {
    pub use stbus_exec::*;
}
pub mod flow;
pub mod incremental;
pub mod params;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod phase4;
pub mod pipeline;
pub mod synthesizer;

pub use batch::{Batch, BatchResult};
pub use flow::{ConfigEval, DesignFlow, DesignReport, FlowError};
pub use incremental::TouchedTargets;
pub use params::{paper_suite_params, DesignParams, Windowing};
pub use phase2::Preprocessed;
pub use phase3::{
    synthesize, synthesize_heuristic, synthesize_heuristic_cancellable_with, ProbeScheduler,
    SynthesisEngine, SynthesisOutcome,
};
pub use phase4::{QosReport, QosStream, Validation};
pub use pipeline::{
    AnalysisArtifact, AnalysisKey, Analyzed, BaselineSet, Collected, CollectionKey, Evaluation,
    Pipeline, Synthesized,
};
pub use synthesizer::{Exact, Heuristic, Portfolio, SolverKind, Synthesizer};

/// Minimal JSON string escaping for names and labels in the hand-rolled
/// JSON renderers ([`SynthesisOutcome::to_json`],
/// [`DesignReport::paper_row_json`] and the CLI/gateway wire formats —
/// the offline build carries no JSON dependency).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
