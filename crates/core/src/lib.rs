//! Application-specific STbus crossbar generation — the design methodology
//! of Murali & De Micheli, *"An Application-Specific Design Methodology for
//! STbus Crossbar Generation"*, DATE 2005.
//!
//! Given an application's traffic, the methodology designs the smallest
//! STbus partial crossbar that satisfies the application's performance
//! constraints, and the optimal binding of targets onto its buses. It
//! proceeds in the four phases of the paper's Fig. 3:
//!
//! 1. **Traffic collection** ([`phase1`]) — simulate the application on a
//!    *full* crossbar and record the arbitrated traffic trace;
//! 2. **Pre-processing** ([`phase2`]) — window-based analysis of the trace:
//!    per-window bandwidth `comm(i,m)`, pairwise overlaps `wo(i,j,m)`, the
//!    conflict matrix from the overlap threshold and critical-stream
//!    clashes, and the `maxtb` cap;
//! 3. **Synthesis** ([`phase3`]) — binary search for the minimum feasible
//!    bus count (MILP-1) followed by optimal binding minimising the maximum
//!    per-bus overlap (MILP-2);
//! 4. **Validation** ([`phase4`]) — cycle-accurate simulation of the
//!    application on the designed crossbar.
//!
//! Both the initiator→target and target→initiator crossbars are designed
//! (the response path is derived from request completions). [`baselines`]
//! provides the comparison designs used throughout the paper's evaluation:
//! average-flow design, peak-bandwidth (contention-elimination) design,
//! random binding, shared bus and full crossbar.
//!
//! # Quick start
//!
//! ```
//! use stbus_core::{DesignFlow, DesignParams};
//! use stbus_traffic::workloads;
//!
//! let app = workloads::matrix::mat2(42);
//! let flow = DesignFlow::new(DesignParams::default());
//! let report = flow.run(&app).expect("synthesis succeeds");
//! // The designed crossbar uses far fewer buses than the full crossbar…
//! assert!(report.designed.total_buses() < report.full.total_buses());
//! // …while keeping latency within a small factor of it.
//! assert!(report.designed.avg_latency < 4.0 * report.full.avg_latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod flow;
pub mod params;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod phase4;

pub use flow::{ConfigEval, DesignFlow, DesignReport, FlowError};
pub use params::{DesignParams, Windowing};
pub use phase2::Preprocessed;
pub use phase4::{QosReport, QosStream, Validation};
pub use phase3::{synthesize, synthesize_heuristic, SynthesisOutcome};
