//! The staged design pipeline — explicit, reusable artifacts for the four
//! phases of the methodology.
//!
//! [`DesignFlow::run`](crate::DesignFlow::run) bundles all four phases
//! behind one call, which is convenient but wasteful for design-space
//! exploration: every parameter point pays the phase-1 full-crossbar
//! reference simulation again even though the collected traffic does not
//! depend on the analysis parameters at all. This module splits the flow
//! into typed stages whose artifacts are cheap to reuse:
//!
//! ```text
//! Pipeline::collect(&app, &params)   -> Collected      (phase 1, expensive)
//! Collected::analyze(&params)        -> Analyzed       (phase 2)
//! Analyzed::synthesize(&strategy)    -> Synthesized    (phase 3)
//! Synthesized::validate(&baselines)  -> Evaluation     (phase 4)
//! ```
//!
//! A sweep over window sizes, overlap thresholds or synthesis strategies
//! holds one [`Collected`] and fans out phases 2–4 per point. Collection
//! *does* depend on the simulation-facing parameters (arbitration policy,
//! outstanding-transaction depth, response scaling); [`CollectionKey`]
//! captures exactly that dependency and [`Collected::analyze`] enforces
//! it, so an artifact can never silently be reused across parameters that
//! would have produced different traffic.
//!
//! Solver knobs ride along in [`DesignParams`] untouched by the staging:
//! in particular [`DesignParams::with_pruning`] selects the per-node
//! lower-bound pruning level of the exact binding search
//! ([`stbus_milp::PruningLevel`]), which [`Analyzed::synthesize`] hands to
//! whatever strategy is plugged in — the default `Standard` level is
//! proven bit-identical to the unpruned search, so staged, legacy and
//! batch routes stay equivalent at every level that claims identity.
//!
//! # Example
//!
//! ```
//! use stbus_core::pipeline::{BaselineSet, Pipeline};
//! use stbus_core::synthesizer::Exact;
//! use stbus_core::DesignParams;
//! use stbus_traffic::workloads;
//!
//! let app = workloads::matrix::mat2(42);
//! let base = DesignParams::default();
//! let collected = Pipeline::collect(&app, &base); // phase 1 runs once…
//! for ws in [500, 1_000, 2_000] {
//!     // …and phases 2–4 sweep the grid on the same artifact.
//!     let params = base.clone().with_window_size(ws);
//!     let evaluation = collected
//!         .analyze(&params)
//!         .synthesize(&Exact::default())
//!         .expect("within solver limits")
//!         .validate(&BaselineSet::none())
//!         .expect("validation succeeds");
//!     assert!(evaluation.designed.total_buses() >= 2);
//! }
//! ```

use crate::baselines::{average_flow_design, peak_bandwidth_design, random_binding_design};
use crate::exec;
use crate::flow::{ConfigEval, DesignReport, FlowError};
use crate::incremental::patch_traffic;
use crate::params::DesignParams;
use crate::params::Windowing;
use crate::phase1::{collect, CollectedTraffic};
use crate::phase2::Preprocessed;
use crate::phase3::SynthesisOutcome;
use crate::synthesizer::Synthesizer;
use serde::{Deserialize, Serialize};
use stbus_sim::{Arbitration, CrossbarConfig};
use stbus_traffic::workloads::Application;
use stbus_traffic::{DeltaError, OverlapProfile, Trace, WindowStats, WorkloadDelta};

/// The subset of [`DesignParams`] that phase-1 collection depends on.
///
/// Two parameter sets with equal keys produce byte-identical collected
/// traffic, so phases 2–4 can sweep everything else on one artifact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectionKey {
    /// Arbitration policy of the reference full-crossbar simulation.
    pub arbitration: Arbitration,
    /// Outstanding-transaction depth per master.
    pub max_outstanding: usize,
    /// Response duration scale (bit pattern, for exact comparison).
    pub response_scale_bits: u64,
}

impl CollectionKey {
    /// Extracts the collection-relevant subset of `params`.
    #[must_use]
    pub fn of(params: &DesignParams) -> Self {
        Self {
            arbitration: params.arbitration,
            max_outstanding: params.max_outstanding,
            response_scale_bits: params.response_scale.to_bits(),
        }
    }

    /// Injective fixed-width encoding of the key, for use in hashed
    /// content-addressed cache identities (the key itself derives only
    /// `PartialEq` — its float bit-pattern field makes a derived `Hash`
    /// easy to get subtly wrong, so cache layers hash these words
    /// instead). Equal keys ⇔ equal fingerprints.
    #[must_use]
    pub fn fingerprint(&self) -> [u64; 3] {
        let arb = match self.arbitration {
            Arbitration::FixedPriority => 0u64,
            Arbitration::RoundRobin => 1,
            Arbitration::LeastRecentlyUsed => 2,
        };
        [arb, self.max_outstanding as u64, self.response_scale_bits]
    }
}

/// The subset of [`DesignParams`] the *window analysis* of phase 2 depends
/// on (given fixed collected traffic).
///
/// Two parameter sets with equal [`CollectionKey`]s **and** equal
/// `AnalysisKey`s produce byte-identical [`WindowStats`] and
/// [`OverlapProfile`]s, so a sweep over the remaining knobs — overlap
/// threshold, `maxtb`, solver limits, synthesis strategy — can share one
/// [`AnalysisArtifact`] and re-threshold in O(pairs) per point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisKey {
    /// Analysis window size `WS`.
    pub window_size: u64,
    /// Window layout policy (uniform or adaptive, with its knobs).
    pub windowing: Windowing,
}

impl AnalysisKey {
    /// Extracts the analysis-relevant subset of `params`.
    #[must_use]
    pub fn of(params: &DesignParams) -> Self {
        Self {
            window_size: params.window_size,
            windowing: params.windowing,
        }
    }

    /// Injective fixed-width encoding of the key, for hashed cache
    /// identities (see [`CollectionKey::fingerprint`]). Equal keys ⇔
    /// equal fingerprints.
    #[must_use]
    pub fn fingerprint(&self) -> [u64; 4] {
        match self.windowing {
            Windowing::Uniform => [self.window_size, 0, 0, 0],
            Windowing::Adaptive {
                coarse,
                quiet_threshold,
            } => [self.window_size, 1, coarse, quiet_threshold.to_bits()],
        }
    }
}

/// Entry point of the staged pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline;

impl Pipeline {
    /// Phase 1: runs the application on full crossbars and captures the
    /// arbitrated traffic as a reusable artifact.
    ///
    /// Only the [`CollectionKey`] subset of `params` matters here; the
    /// analysis knobs (window size, threshold, maxtb, windowing, solver
    /// limits) are free to vary in later stages.
    #[must_use]
    pub fn collect<'a>(app: &'a Application, params: &DesignParams) -> Collected<'a> {
        Collected {
            app,
            key: CollectionKey::of(params),
            traffic: collect(app, params),
        }
    }
}

/// Phase-1 artifact: the observed traffic of one application under one
/// [`CollectionKey`].
#[derive(Debug, Clone)]
pub struct Collected<'a> {
    app: &'a Application,
    key: CollectionKey,
    traffic: CollectedTraffic,
}

impl<'a> Collected<'a> {
    /// Rebuilds a collection artifact from traffic captured earlier —
    /// the re-entry point for process-level artifact caches that store
    /// owned [`CollectedTraffic`] (a `Collected` borrows its
    /// application, so it cannot itself outlive one request).
    ///
    /// The caller asserts that `traffic` was produced by
    /// [`Pipeline::collect`] on this `app` under parameters whose
    /// [`CollectionKey`] equals `CollectionKey::of(params)`; downstream
    /// stages then behave bit-identically to the original artifact.
    /// Nothing is re-simulated.
    #[must_use]
    pub fn from_cached(
        app: &'a Application,
        params: &DesignParams,
        traffic: CollectedTraffic,
    ) -> Self {
        Self {
            app,
            key: CollectionKey::of(params),
            traffic,
        }
    }
    /// The application this traffic was collected from.
    #[must_use]
    pub fn app(&self) -> &'a Application {
        self.app
    }

    /// The collection-relevant parameters this artifact was built under.
    #[must_use]
    pub fn key(&self) -> CollectionKey {
        self.key
    }

    /// The raw collected traces and reference simulations.
    #[must_use]
    pub fn traffic(&self) -> &CollectedTraffic {
        &self.traffic
    }

    /// Unwraps the artifact into the raw collected traffic.
    #[must_use]
    pub fn into_traffic(self) -> CollectedTraffic {
        self.traffic
    }

    /// Whether `params` can legally reuse this artifact.
    #[must_use]
    pub fn is_compatible(&self, params: &DesignParams) -> bool {
        self.key == CollectionKey::of(params)
    }

    /// Phase 2: window analysis and conflict extraction for both crossbar
    /// directions under `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params` differs from the collection parameters in any
    /// [`CollectionKey`] field — the collected traffic would not match the
    /// traffic those parameters produce. Re-run [`Pipeline::collect`] (or
    /// let [`crate::Batch`] group the grid by key) instead.
    #[must_use]
    pub fn analyze(&self, params: &DesignParams) -> Analyzed<'_> {
        assert!(
            self.is_compatible(params),
            "analysis params change the collected traffic (arbitration, \
             max_outstanding or response_scale differ from the collection \
             run); collect again for these parameters"
        );
        Analyzed {
            collected: CollectedRef::Borrowed(self),
            params: params.clone(),
            pre_it: Preprocessed::analyze(&self.traffic.it_trace, params),
            pre_ti: Preprocessed::analyze(&self.traffic.ti_trace, params),
        }
    }

    /// Runs the window analysis once and captures it as a sweep-resident
    /// [`AnalysisArtifact`]: stats and overlap profiles for both crossbar
    /// directions, independent of the overlap threshold, `maxtb` and
    /// solver knobs.
    ///
    /// # Panics
    ///
    /// Panics if `params` is incompatible with this collection (see
    /// [`Collected::analyze`]).
    #[must_use]
    pub fn analysis_artifact(&self, params: &DesignParams) -> AnalysisArtifact {
        assert!(
            self.is_compatible(params),
            "analysis params change the collected traffic (arbitration, \
             max_outstanding or response_scale differ from the collection \
             run); collect again for these parameters"
        );
        // Route through `Preprocessed::analyze` so the windowing policy is
        // interpreted in exactly one place.
        let pre_it = Preprocessed::analyze(&self.traffic.it_trace, params);
        let pre_ti = Preprocessed::analyze(&self.traffic.ti_trace, params);
        AnalysisArtifact {
            collection: self.key,
            key: AnalysisKey::of(params),
            it: (pre_it.stats, pre_it.profile),
            ti: (pre_ti.stats, pre_ti.profile),
        }
    }

    /// Phase 2 from a sweep-resident artifact: re-thresholds the cached
    /// profiles for `params` in O(pairs) instead of re-running the window
    /// analysis. Bit-identical to [`Collected::analyze`] for every
    /// compatible `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params` is incompatible with this collection, or if the
    /// artifact was built under a different [`CollectionKey`] or
    /// [`AnalysisKey`] than `params` describes.
    #[must_use]
    pub fn analyze_with(&self, artifact: &AnalysisArtifact, params: &DesignParams) -> Analyzed<'_> {
        assert!(
            self.is_compatible(params),
            "analysis params change the collected traffic; collect again \
             for these parameters"
        );
        assert!(
            artifact.collection == self.key && artifact.key == AnalysisKey::of(params),
            "analysis artifact was built under a different collection or \
             window plan; call `analysis_artifact` for these parameters"
        );
        Analyzed {
            collected: CollectedRef::Borrowed(self),
            params: params.clone(),
            pre_it: Preprocessed::from_profile(
                artifact.it.0.clone(),
                artifact.it.1.clone(),
                params,
            ),
            pre_ti: Preprocessed::from_profile(
                artifact.ti.0.clone(),
                artifact.ti.1.clone(),
                params,
            ),
        }
    }

    /// Applies a [`WorkloadDelta`] to this collection, producing the
    /// patched artifact a from-scratch re-analysis would consume — the
    /// reference path the incremental [`Analyzed::reanalyze`] is proven
    /// bit-identical against.
    ///
    /// The request trace is patched exactly per [`WorkloadDelta::apply`];
    /// the response trace follows the ideal-response model documented in
    /// [`crate::incremental`]. The artifact keeps the *base* application
    /// reference and simulation reports: phases 2–3 never read them, but
    /// phase-4 validation of a delta-patched design re-simulates the base
    /// application, so deltas that add or edit traffic should treat
    /// validation results as describing the base workload.
    ///
    /// # Errors
    ///
    /// Any [`DeltaError`] from validating `delta` against the collected
    /// request trace.
    pub fn apply_delta(&self, delta: &WorkloadDelta) -> Result<Collected<'a>, DeltaError> {
        let scale = f64::from_bits(self.key.response_scale_bits);
        let (traffic, _) = patch_traffic(&self.traffic, delta, scale)?;
        Ok(Collected {
            app: self.app,
            key: self.key,
            traffic,
        })
    }

    /// Analyzes a whole θ-sweep on one window analysis: the first point
    /// pays the sweep-line pass, every further threshold re-derives its
    /// conflict graphs in O(pairs). Each returned [`Analyzed`] is
    /// bit-identical to a fresh [`Collected::analyze`] at that threshold.
    #[must_use]
    pub fn analyze_sweep(&self, base: &DesignParams, thresholds: &[f64]) -> Vec<Analyzed<'_>> {
        if thresholds.is_empty() {
            return Vec::new();
        }
        let artifact = self.analysis_artifact(base);
        thresholds
            .iter()
            .map(|&theta| self.analyze_with(&artifact, &base.clone().with_overlap_threshold(theta)))
            .collect()
    }
}

/// Sweep-resident phase-2 artifact: the window statistics and
/// [`OverlapProfile`]s of both crossbar directions under one
/// ([`CollectionKey`], [`AnalysisKey`]) pair.
///
/// Everything here is threshold-independent, so a θ/`maxtb`/strategy sweep
/// holds one artifact and fans out [`Collected::analyze_with`] per point —
/// window analysis runs once per `(app, key)` instead of once per point.
#[derive(Debug, Clone)]
pub struct AnalysisArtifact {
    collection: CollectionKey,
    key: AnalysisKey,
    /// Request-path (initiator→target) stats and profile.
    it: (WindowStats, OverlapProfile),
    /// Response-path (target→initiator) stats and profile.
    ti: (WindowStats, OverlapProfile),
}

impl AnalysisArtifact {
    /// Rebuilds a sweep-resident artifact from stats and profiles
    /// captured earlier — the re-entry point for caches that persist
    /// phase-2 state across requests (the gateway's incremental
    /// re-synthesis path stores the *reanalyzed* stats/profiles of a
    /// delta-patched workload this way, so a chained delta re-enters
    /// [`Collected::analyze_with`] without re-running the window sweep).
    ///
    /// The caller asserts the parts were produced by an analysis of
    /// traffic collected under `collection` with the window plan of
    /// `key`; downstream stages then behave bit-identically to the
    /// original artifact.
    #[must_use]
    pub fn from_parts(
        collection: CollectionKey,
        key: AnalysisKey,
        it: (WindowStats, OverlapProfile),
        ti: (WindowStats, OverlapProfile),
    ) -> Self {
        Self {
            collection,
            key,
            it,
            ti,
        }
    }

    /// The analysis-relevant parameter subset this artifact was built for.
    #[must_use]
    pub fn key(&self) -> AnalysisKey {
        self.key
    }

    /// The collection key of the traffic this artifact analyzed.
    #[must_use]
    pub fn collection_key(&self) -> CollectionKey {
        self.collection
    }

    /// Whether `params` can legally reuse this artifact (same collection
    /// and window plan; threshold/`maxtb`/solver knobs are free).
    #[must_use]
    pub fn is_compatible(&self, params: &DesignParams) -> bool {
        self.collection == CollectionKey::of(params) && self.key == AnalysisKey::of(params)
    }
}

/// The collection artifact is usually borrowed from the caller; the
/// delta path ([`Analyzed::reanalyze`]) owns a patched copy instead.
/// Either way the downstream stages are oblivious — they read through
/// [`Analyzed::collected`]. (A hand-rolled enum rather than
/// [`std::borrow::Cow`]: `Cow`'s `Owned` variant goes through the
/// `ToOwned` associated-type projection, which would make `Analyzed<'a>`
/// invariant in `'a` and break the lifetime shrinking `synthesize`
/// relies on.)
#[derive(Debug, Clone)]
enum CollectedRef<'a> {
    Borrowed(&'a Collected<'a>),
    Owned(Box<Collected<'a>>),
}

impl<'a> std::ops::Deref for CollectedRef<'a> {
    type Target = Collected<'a>;

    fn deref(&self) -> &Collected<'a> {
        match self {
            CollectedRef::Borrowed(c) => c,
            CollectedRef::Owned(c) => c,
        }
    }
}

/// Phase-2 artifact: windowed statistics and conflicts for both
/// directions, bound to the parameters that produced them.
#[derive(Debug, Clone)]
pub struct Analyzed<'a> {
    collected: CollectedRef<'a>,
    params: DesignParams,
    pre_it: Preprocessed,
    pre_ti: Preprocessed,
}

impl<'a> Analyzed<'a> {
    /// The parameters in force for this analysis.
    #[must_use]
    pub fn params(&self) -> &DesignParams {
        &self.params
    }

    /// Request-path (initiator→target) analysis.
    #[must_use]
    pub fn pre_it(&self) -> &Preprocessed {
        &self.pre_it
    }

    /// Response-path (target→initiator) analysis.
    #[must_use]
    pub fn pre_ti(&self) -> &Preprocessed {
        &self.pre_ti
    }

    /// The collection artifact this analysis was derived from
    /// (borrowed from the caller, or owned when this analysis came out of
    /// [`Analyzed::reanalyze`]).
    #[must_use]
    pub fn collected(&self) -> &Collected<'a> {
        &self.collected
    }

    /// Re-thresholds this analysis at a new overlap threshold without
    /// re-running the window analysis (O(pairs) per direction via the
    /// sweep-resident [`OverlapProfile`]). The result is bit-identical to
    /// `self.collected().analyze(&params_at_theta)`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or not finite.
    #[must_use]
    pub fn at_threshold(&self, threshold: f64) -> Analyzed<'a> {
        Analyzed {
            collected: self.collected.clone(),
            params: self.params.clone().with_overlap_threshold(threshold),
            pre_it: self.pre_it.at_threshold(threshold),
            pre_ti: self.pre_ti.at_threshold(threshold),
        }
    }

    /// Delta-aware re-analysis: patches the collected traffic per `delta`
    /// and re-derives both directions' phase-2 artifacts touching only
    /// the edited targets — O(touched × targets) pairwise work instead of
    /// a full sweep-line pass — with the conflict graphs patched in
    /// place. The result is **bit-identical** to
    /// `self.collected().apply_delta(delta)?.analyze(&new_params)` where
    /// `new_params` applies the delta's θ override, as the
    /// `incremental_equivalence` suite proves under proptest.
    ///
    /// Route by delta shape:
    ///
    /// * **θ-only** deltas skip traffic work entirely and re-threshold
    ///   the cached profiles in O(pairs) ([`Analyzed::at_threshold`]).
    /// * **Traffic** deltas under the *uniform* window layout take the
    ///   incremental path (`apply_delta` on stats and profile, in-place
    ///   conflict-graph patch via `grown` + `patch_conflict_graph`).
    /// * **Adaptive** window plans re-derive their boundaries from the
    ///   trace itself, so a traffic delta falls back to a full phase-2
    ///   re-analysis of the patched traces — still skipping phase 1,
    ///   still bit-identical, just O(events log events) instead of
    ///   O(touched × targets).
    ///
    /// Phase 1 is never re-run: the response direction follows the
    /// ideal-response model documented in [`crate::incremental`].
    ///
    /// # Errors
    ///
    /// Any [`DeltaError`] from validating `delta` against the collected
    /// request trace.
    pub fn reanalyze(&self, delta: &WorkloadDelta) -> Result<Analyzed<'a>, DeltaError> {
        if !delta.touches_traffic() {
            delta.validate(&self.collected.traffic().it_trace)?;
            let theta = delta.threshold.unwrap_or(self.params.overlap_threshold);
            return Ok(self.at_threshold(theta));
        }
        let scale = f64::from_bits(self.collected.key().response_scale_bits);
        let (traffic, touched) = patch_traffic(self.collected.traffic(), delta, scale)?;
        let params = match delta.threshold {
            Some(theta) => self.params.clone().with_overlap_threshold(theta),
            None => self.params.clone(),
        };
        let collected = Collected {
            app: self.collected.app(),
            key: self.collected.key(),
            traffic,
        };
        let same_theta = delta
            .threshold
            .is_none_or(|t| t == self.params.overlap_threshold);
        let incremental_ok = matches!(params.windowing, Windowing::Uniform)
            && self.pre_it.stats.is_uniform()
            && self.pre_ti.stats.is_uniform();
        let (pre_it, pre_ti) = if incremental_ok {
            (
                repreprocess(
                    &self.pre_it,
                    &collected.traffic.it_trace,
                    &touched.it,
                    &params,
                    same_theta,
                ),
                repreprocess(
                    &self.pre_ti,
                    &collected.traffic.ti_trace,
                    &touched.ti,
                    &params,
                    same_theta,
                ),
            )
        } else {
            (
                Preprocessed::analyze(&collected.traffic.it_trace, &params),
                Preprocessed::analyze(&collected.traffic.ti_trace, &params),
            )
        };
        Ok(Analyzed {
            collected: CollectedRef::Owned(Box::new(collected)),
            params,
            pre_it,
            pre_ti,
        })
    }

    /// Phase 3: synthesises both crossbar directions with `strategy`.
    ///
    /// # Errors
    ///
    /// [`FlowError::SolverLimit`] if the strategy's exact search exhausts
    /// its node budget (the [`crate::synthesizer::Portfolio`] strategy
    /// never does — it falls back to the heuristic).
    pub fn synthesize(&self, strategy: &dyn Synthesizer) -> Result<Synthesized<'_>, FlowError> {
        let it = strategy.synthesize(&self.pre_it, &self.params)?;
        let ti = strategy.synthesize(&self.pre_ti, &self.params)?;
        Ok(Synthesized {
            analyzed: self,
            it,
            ti,
        })
    }

    /// Phase 3 with cooperative cancellation: `Ok(None)` when `cancel` is
    /// raised before or during either direction's search, otherwise
    /// bit-identical to [`Analyzed::synthesize`] (see
    /// [`Synthesizer::synthesize_cancellable`]). This is what lets a
    /// service abandon an in-flight design the moment its requester goes
    /// away instead of finishing a solve nobody will read.
    ///
    /// # Errors
    ///
    /// [`FlowError::SolverLimit`] as for [`Analyzed::synthesize`].
    pub fn synthesize_cancellable(
        &self,
        strategy: &dyn Synthesizer,
        cancel: &stbus_exec::CancelToken,
    ) -> Result<Option<Synthesized<'_>>, FlowError> {
        let Some(it) = strategy.synthesize_cancellable(&self.pre_it, &self.params, cancel)? else {
            return Ok(None);
        };
        let Some(ti) = strategy.synthesize_cancellable(&self.pre_ti, &self.params, cancel)? else {
            return Ok(None);
        };
        Ok(Some(Synthesized {
            analyzed: self,
            it,
            ti,
        }))
    }
}

/// One direction of the incremental phase-2 path: re-derives a
/// [`Preprocessed`] from its predecessor touching only the `touched`
/// targets. Stats and profile rows of untouched targets are copied;
/// the conflict graph is grown to the new target count and patched in
/// place when θ is unchanged, or re-thresholded from the (already
/// delta-patched) profile in O(pairs) otherwise.
fn repreprocess(
    base: &Preprocessed,
    patched: &Trace,
    touched: &[usize],
    params: &DesignParams,
    same_theta: bool,
) -> Preprocessed {
    let stats = base.stats.apply_delta(patched, touched);
    let profile = base.profile.apply_delta(&stats, touched);
    let conflicts = if same_theta {
        let mut graph = base.conflicts.grown(stats.num_targets());
        profile.patch_conflict_graph(&mut graph, touched, params.overlap_threshold);
        graph
    } else {
        profile.conflict_graph(params.overlap_threshold)
    };
    Preprocessed {
        stats,
        profile,
        conflicts,
        maxtb: params.maxtb,
    }
}

/// Phase-3 artifact: the synthesised crossbars for both directions.
#[derive(Debug, Clone)]
pub struct Synthesized<'a> {
    analyzed: &'a Analyzed<'a>,
    /// Request-path synthesis outcome.
    pub it: SynthesisOutcome,
    /// Response-path synthesis outcome.
    pub ti: SynthesisOutcome,
}

impl Synthesized<'_> {
    /// Total bus count of the design over both directions.
    #[must_use]
    pub fn total_buses(&self) -> usize {
        self.it.num_buses + self.ti.num_buses
    }

    /// The analysis this synthesis came from.
    #[must_use]
    pub fn analyzed(&self) -> &Analyzed<'_> {
        self.analyzed
    }

    /// Phase 4: validates the design end to end and evaluates exactly the
    /// requested baselines on the same traffic.
    ///
    /// # Errors
    ///
    /// [`FlowError::SolverLimit`] if a baseline's own design search (the
    /// avg-flow and peak baselines solve MILPs too) exhausts its budget.
    pub fn validate(&self, baselines: &BaselineSet) -> Result<Evaluation, FlowError> {
        let app = self.analyzed.collected.app();
        let params = &self.analyzed.params;
        let traffic = self.analyzed.collected.traffic();
        let num_initiators = app.spec.num_initiators();
        let num_targets = app.spec.num_targets();

        // Stage the cheap, fallible part first: the avg-flow/peak/random
        // baselines solve their own MILPs, which stay sequential so `?`
        // error handling is unchanged. What remains per spec is the
        // expensive cycle-accurate simulation pair; those run through
        // the shared executor below.
        let mut specs: Vec<(String, CrossbarConfig, CrossbarConfig)> = vec![(
            "designed".to_string(),
            self.it.config.clone(),
            self.ti.config.clone(),
        )];
        if baselines.full {
            specs.push((
                "full".to_string(),
                CrossbarConfig::full(num_targets).with_arbitration(params.arbitration),
                CrossbarConfig::full(num_initiators).with_arbitration(params.arbitration),
            ));
        }
        if baselines.shared {
            specs.push((
                "shared".to_string(),
                CrossbarConfig::shared_bus(num_targets).with_arbitration(params.arbitration),
                CrossbarConfig::shared_bus(num_initiators).with_arbitration(params.arbitration),
            ));
        }
        if baselines.avg_flow {
            let avg_it = average_flow_design(&traffic.it_trace, params)?.config;
            let avg_ti = average_flow_design(&traffic.ti_trace, params)?.config;
            specs.push(("avg-based".to_string(), avg_it, avg_ti));
        }
        if baselines.peak {
            let peak_it = peak_bandwidth_design(&traffic.it_trace, params)?.config;
            let peak_ti = peak_bandwidth_design(&traffic.ti_trace, params)?.config;
            specs.push(("peak-based".to_string(), peak_it, peak_ti));
        }
        for &seed in &baselines.random_seeds {
            // A random permutation can be infeasible at the optimal size;
            // such seeds are skipped rather than failing the evaluation.
            let rnd_it =
                random_binding_design(&self.analyzed.pre_it, self.it.num_buses, seed, params)?;
            let rnd_ti =
                random_binding_design(&self.analyzed.pre_ti, self.ti.num_buses, seed, params)?;
            if let (Some(it), Some(ti)) = (rnd_it, rnd_ti) {
                specs.push((format!("random-{seed}"), it.config, ti.config));
            }
        }

        // Phase-4 simulations are independent per spec, so they feed the
        // process-wide worker set like every other parallel layer.
        // `exec::map` preserves spec order, so the evaluation is
        // bit-identical to the old sequential loop at any worker count.
        let mut results = exec::map(&specs, exec::parallelism(), |(label, it, ti)| {
            ConfigEval::new(label, it.clone(), ti.clone(), app, params)
        });
        let designed = results.remove(0);
        let evals = results;

        Ok(Evaluation {
            app_name: app.name().to_string(),
            num_initiators,
            num_targets,
            it_synthesis: self.it.clone(),
            ti_synthesis: self.ti.clone(),
            designed,
            baselines: evals,
        })
    }

    /// Validates against the paper's baseline set (full, shared,
    /// avg-flow) and packages the result as the classic [`DesignReport`].
    ///
    /// # Errors
    ///
    /// [`FlowError::SolverLimit`] as for [`Synthesized::validate`].
    pub fn report(&self) -> Result<DesignReport, FlowError> {
        let evaluation = self.validate(&BaselineSet::paper())?;
        Ok(evaluation
            .into_report()
            .expect("paper baseline set carries full, shared and avg-flow"))
    }
}

/// Selector for the comparison designs phase 4 should evaluate.
///
/// Every baseline costs a cycle-accurate simulation pair (and the
/// avg-flow/peak baselines an extra MILP solve), so sweeps that only need
/// the designed crossbar's latency use [`BaselineSet::none`] and pay for
/// nothing else.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineSet {
    /// Evaluate the full crossbar (latency reference).
    pub full: bool,
    /// Evaluate the single shared bus (cost reference).
    pub shared: bool,
    /// Evaluate the average-flow prior-work design.
    pub avg_flow: bool,
    /// Evaluate the peak-bandwidth (contention-elimination) design.
    pub peak: bool,
    /// Evaluate a random-but-feasible binding per listed seed.
    pub random_seeds: Vec<u64>,
}

impl BaselineSet {
    /// No baselines: only the designed configuration is simulated.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// The paper's evaluation set: full crossbar, shared bus, avg-flow.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            full: true,
            shared: true,
            avg_flow: true,
            ..Self::default()
        }
    }

    /// Every deterministic baseline (paper set plus peak-bandwidth).
    #[must_use]
    pub fn all() -> Self {
        Self {
            peak: true,
            ..Self::paper()
        }
    }

    /// Adds the full-crossbar baseline (builder style).
    #[must_use]
    pub fn with_full(mut self) -> Self {
        self.full = true;
        self
    }

    /// Adds the shared-bus baseline (builder style).
    #[must_use]
    pub fn with_shared(mut self) -> Self {
        self.shared = true;
        self
    }

    /// Adds the average-flow baseline (builder style).
    #[must_use]
    pub fn with_avg_flow(mut self) -> Self {
        self.avg_flow = true;
        self
    }

    /// Adds the peak-bandwidth baseline (builder style).
    #[must_use]
    pub fn with_peak(mut self) -> Self {
        self.peak = true;
        self
    }

    /// Adds a random-binding baseline for `seed` (builder style).
    #[must_use]
    pub fn with_random(mut self, seed: u64) -> Self {
        self.random_seeds.push(seed);
        self
    }
}

/// Phase-4 artifact: the designed configuration evaluated next to the
/// requested baselines.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Application name.
    pub app_name: String,
    /// Initiator count.
    pub num_initiators: usize,
    /// Target count.
    pub num_targets: usize,
    /// Request-path synthesis detail.
    pub it_synthesis: SynthesisOutcome,
    /// Response-path synthesis detail.
    pub ti_synthesis: SynthesisOutcome,
    /// The methodology's design, evaluated.
    pub designed: ConfigEval,
    /// The evaluated baselines, labelled `full` / `shared` / `avg-based` /
    /// `peak-based` / `random-<seed>`.
    pub baselines: Vec<ConfigEval>,
}

impl Evaluation {
    /// Looks up an evaluated baseline by label.
    #[must_use]
    pub fn baseline(&self, label: &str) -> Option<&ConfigEval> {
        self.baselines.iter().find(|e| e.label == label)
    }

    /// Repackages a paper-baseline evaluation as the classic
    /// [`DesignReport`]. Returns `None` when the `full`, `shared` or
    /// `avg-based` baseline was not evaluated.
    #[must_use]
    pub fn into_report(self) -> Option<DesignReport> {
        let find = |label: &str| self.baselines.iter().find(|e| e.label == label).cloned();
        let full = find("full")?;
        let shared = find("shared")?;
        let avg_based = find("avg-based")?;
        Some(DesignReport {
            app_name: self.app_name,
            num_initiators: self.num_initiators,
            num_targets: self.num_targets,
            it_synthesis: self.it_synthesis,
            ti_synthesis: self.ti_synthesis,
            designed: self.designed,
            full,
            shared,
            avg_based,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesizer::{Exact, Heuristic};
    use stbus_traffic::workloads;
    use stbus_traffic::{InitiatorId, TargetEdit, TargetId, TraceEvent};

    /// The incremental-equivalence contract at pipeline level: for every
    /// delta shape, `reanalyze` must equal the from-scratch route
    /// (`apply_delta` then `analyze`) bit for bit — stats, profiles and
    /// conflict graphs in both directions.
    fn assert_reanalyze_matches(base_params: &DesignParams, delta: &WorkloadDelta) {
        let app = workloads::matrix::mat2(42);
        let collected = Pipeline::collect(&app, base_params);
        let analyzed = collected.analyze(base_params);

        let incremental = analyzed.reanalyze(delta).expect("valid delta");
        let new_params = match delta.threshold {
            Some(theta) => base_params.clone().with_overlap_threshold(theta),
            None => base_params.clone(),
        };
        let scratch_collected = collected.apply_delta(delta).expect("valid delta");
        let scratch = scratch_collected.analyze(&new_params);

        assert_eq!(
            incremental.collected().traffic().it_trace,
            scratch.collected().traffic().it_trace
        );
        assert_eq!(
            incremental.collected().traffic().ti_trace,
            scratch.collected().traffic().ti_trace
        );
        for (label, inc, fresh) in [
            ("it", incremental.pre_it(), scratch.pre_it()),
            ("ti", incremental.pre_ti(), scratch.pre_ti()),
        ] {
            assert_eq!(inc.stats, fresh.stats, "{label} stats");
            assert_eq!(inc.profile, fresh.profile, "{label} profile");
            assert_eq!(inc.conflicts, fresh.conflicts, "{label} conflicts");
            assert_eq!(inc.maxtb, fresh.maxtb, "{label} maxtb");
        }
        assert_eq!(incremental.params(), scratch.params());
    }

    fn edit_delta() -> WorkloadDelta {
        WorkloadDelta {
            edits: vec![TargetEdit {
                target: TargetId::new(1),
                events: vec![
                    TraceEvent::new(InitiatorId::new(0), TargetId::new(1), 40, 25),
                    TraceEvent::new(InitiatorId::new(1), TargetId::new(1), 55, 10),
                ],
            }],
            ..WorkloadDelta::default()
        }
    }

    #[test]
    fn reanalyze_matches_from_scratch_on_edit() {
        assert_reanalyze_matches(&DesignParams::default(), &edit_delta());
    }

    #[test]
    fn reanalyze_matches_from_scratch_on_removal() {
        let delta = WorkloadDelta {
            removed: vec![TargetId::new(2)],
            ..WorkloadDelta::default()
        };
        assert_reanalyze_matches(&DesignParams::default(), &delta);
    }

    #[test]
    fn reanalyze_matches_from_scratch_on_added_target() {
        let app = workloads::matrix::mat2(42);
        let n = Pipeline::collect(&app, &DesignParams::default())
            .traffic()
            .it_trace
            .num_targets();
        let delta = WorkloadDelta {
            add_targets: 1,
            edits: vec![TargetEdit {
                target: TargetId::new(n),
                events: vec![TraceEvent::new(
                    InitiatorId::new(0),
                    TargetId::new(n),
                    5,
                    30,
                )],
            }],
            ..WorkloadDelta::default()
        };
        assert_reanalyze_matches(&DesignParams::default(), &delta);
    }

    #[test]
    fn reanalyze_matches_from_scratch_on_theta_change() {
        // θ-only rides the at_threshold fast path; θ+traffic re-derives
        // the conflict graph from the patched profile.
        let theta_only = WorkloadDelta {
            threshold: Some(0.35),
            ..WorkloadDelta::default()
        };
        assert_reanalyze_matches(&DesignParams::default(), &theta_only);
        let both = WorkloadDelta {
            threshold: Some(0.05),
            ..edit_delta()
        };
        assert_reanalyze_matches(&DesignParams::default(), &both);
    }

    #[test]
    fn reanalyze_matches_from_scratch_under_adaptive_windows() {
        // Adaptive plans re-derive their boundaries from the trace, so
        // this exercises the documented full-re-analysis fallback.
        let params = DesignParams::default().with_adaptive_windows(2_000, 0.02);
        assert_reanalyze_matches(&params, &edit_delta());
    }

    #[test]
    fn reanalyze_rejects_invalid_deltas() {
        let app = workloads::matrix::mat2(42);
        let params = DesignParams::default();
        let collected = Pipeline::collect(&app, &params);
        let analyzed = collected.analyze(&params);
        let delta = WorkloadDelta {
            removed: vec![TargetId::new(999)],
            ..WorkloadDelta::default()
        };
        assert!(analyzed.reanalyze(&delta).is_err());
        let bad_theta = WorkloadDelta {
            threshold: Some(-0.5),
            ..WorkloadDelta::default()
        };
        assert!(analyzed.reanalyze(&bad_theta).is_err());
    }

    #[test]
    fn reanalyzed_artifact_synthesizes_like_scratch() {
        // The downstream phase-3 outcome agrees too: same bus counts and
        // probe logs either route.
        let app = workloads::matrix::mat2(42);
        let params = DesignParams::default();
        let collected = Pipeline::collect(&app, &params);
        let analyzed = collected.analyze(&params);
        let delta = edit_delta();
        let incremental = analyzed.reanalyze(&delta).expect("valid delta");
        let scratch_collected = collected.apply_delta(&delta).expect("valid delta");
        let scratch = scratch_collected.analyze(&params);
        let s_inc = incremental.synthesize(&Exact::default()).expect("ok");
        let s_scr = scratch.synthesize(&Exact::default()).expect("ok");
        assert_eq!(s_inc.it.num_buses, s_scr.it.num_buses);
        assert_eq!(s_inc.ti.num_buses, s_scr.ti.num_buses);
        assert_eq!(s_inc.it.probes, s_scr.it.probes);
        assert_eq!(s_inc.ti.probes, s_scr.ti.probes);
        assert_eq!(s_inc.it.config.assignment(), s_scr.it.config.assignment());
    }

    #[test]
    fn staged_pipeline_reuses_collection() {
        // Phase-1-once is structural here — `Pipeline::collect` is called
        // once and every sweep point analyses the same artifact. (The
        // global `phase1::collect_runs()` counter is not asserted in unit
        // tests: sibling tests collect concurrently, so deltas race. The
        // single-threaded `variable_windows` bench bin asserts it.)
        let app = workloads::matrix::mat2(42);
        let base = DesignParams::default();
        let collected = Pipeline::collect(&app, &base);
        let mut buses = Vec::new();
        for ws in [500u64, 1_000, 2_000] {
            let params = base.clone().with_window_size(ws);
            assert!(collected.is_compatible(&params));
            let analyzed = collected.analyze(&params);
            let synthesized = analyzed
                .synthesize(&Exact::default())
                .expect("within limits");
            buses.push(synthesized.total_buses());
        }
        // Smaller windows never shrink the crossbar.
        assert!(buses[0] >= buses[1] && buses[1] >= buses[2]);
    }

    #[test]
    fn threshold_sweep_reuses_window_analysis() {
        let app = workloads::matrix::mat2(42);
        let base = DesignParams::default();
        let collected = Pipeline::collect(&app, &base);
        let thresholds = [0.05, 0.15, 0.25, 0.40];

        // Route 1: fresh analysis per point (the pre-PR sweep cost).
        // Route 2: one artifact, O(pairs) re-threshold per point.
        // Route 3: re-threshold from an existing Analyzed.
        let swept = collected.analyze_sweep(&base, &thresholds);
        let first = collected.analyze(&base.clone().with_overlap_threshold(thresholds[0]));
        assert_eq!(swept.len(), thresholds.len());
        for (&theta, incremental) in thresholds.iter().zip(&swept) {
            let params = base.clone().with_overlap_threshold(theta);
            let fresh = collected.analyze(&params);
            let hopped = first.at_threshold(theta);
            for (label, a) in [("sweep", incremental), ("hop", &hopped)] {
                assert_eq!(
                    a.pre_it().conflicts,
                    fresh.pre_it().conflicts,
                    "{label} IT conflicts at θ={theta}"
                );
                assert_eq!(a.pre_ti().conflicts, fresh.pre_ti().conflicts);
                assert_eq!(a.pre_it().stats, fresh.pre_it().stats);
                assert_eq!(a.params().overlap_threshold, theta);
            }
            // And the synthesis downstream agrees bit for bit.
            let s_fresh = fresh.synthesize(&Exact::default()).expect("ok");
            let s_sweep = incremental.synthesize(&Exact::default()).expect("ok");
            assert_eq!(
                s_fresh.it.config.assignment(),
                s_sweep.it.config.assignment()
            );
            assert_eq!(s_fresh.it.probes, s_sweep.it.probes);
        }
    }

    #[test]
    fn fingerprints_track_key_equality() {
        let base = DesignParams::default();
        let variants = [
            base.clone(),
            base.clone().with_response_scale(0.5),
            base.clone().with_max_outstanding(2),
            base.clone().with_window_size(500),
            base.clone().with_adaptive_windows(4_000, 0.05),
        ];
        for a in &variants {
            for b in &variants {
                assert_eq!(
                    CollectionKey::of(a) == CollectionKey::of(b),
                    CollectionKey::of(a).fingerprint() == CollectionKey::of(b).fingerprint(),
                    "collection fingerprint must mirror key equality"
                );
                assert_eq!(
                    AnalysisKey::of(a) == AnalysisKey::of(b),
                    AnalysisKey::of(a).fingerprint() == AnalysisKey::of(b).fingerprint(),
                    "analysis fingerprint must mirror key equality"
                );
            }
        }
    }

    #[test]
    fn cached_traffic_round_trips_through_from_cached() {
        let app = workloads::matrix::mat2(42);
        let params = DesignParams::default();
        let fresh = Pipeline::collect(&app, &params);
        let analyzed = fresh.analyze(&params);
        let direct = analyzed.synthesize(&Exact::default()).expect("ok");

        // A cache stores the owned traffic; a later request rebuilds the
        // artifact and must land on bit-identical results.
        let stored = fresh.clone().into_traffic();
        let rebuilt = Collected::from_cached(&app, &params, stored);
        assert_eq!(rebuilt.key(), fresh.key());
        let rebuilt_analyzed = rebuilt.analyze(&params);
        let via_cache = rebuilt_analyzed.synthesize(&Exact::default()).expect("ok");
        assert_eq!(direct.it.probes, via_cache.it.probes);
        assert_eq!(direct.it.binding, via_cache.it.binding);
        assert_eq!(direct.ti.binding, via_cache.ti.binding);
    }

    #[test]
    #[should_panic(expected = "different collection or window plan")]
    fn artifact_window_mismatch_rejected() {
        let app = workloads::matrix::mat2(42);
        let base = DesignParams::default();
        let collected = Pipeline::collect(&app, &base);
        let artifact = collected.analysis_artifact(&base);
        let other = base.with_window_size(500);
        let _ = collected.analyze_with(&artifact, &other);
    }

    #[test]
    #[should_panic(expected = "collect again")]
    fn incompatible_params_rejected() {
        let app = workloads::matrix::mat2(42);
        let base = DesignParams::default();
        let collected = Pipeline::collect(&app, &base);
        let other = base.with_response_scale(0.5);
        let _ = collected.analyze(&other);
    }

    #[test]
    fn baseline_selection_controls_simulation() {
        let app = workloads::qsort::qsort(44);
        let params = DesignParams::default();
        let collected = Pipeline::collect(&app, &params);
        let analyzed = collected.analyze(&params);
        let synthesized = analyzed.synthesize(&Heuristic::default()).expect("ok");

        let lean = synthesized.validate(&BaselineSet::none()).expect("ok");
        assert!(lean.baselines.is_empty());

        let rich = synthesized
            .validate(&BaselineSet::all().with_random(3))
            .expect("ok");
        assert!(rich.baseline("full").is_some());
        assert!(rich.baseline("shared").is_some());
        assert!(rich.baseline("avg-based").is_some());
        assert!(rich.baseline("peak-based").is_some());
        // The random seed may or may not be feasible; if present it is
        // labelled by seed.
        for b in &rich.baselines {
            assert!(["full", "shared", "avg-based", "peak-based", "random-3"]
                .contains(&b.label.as_str()));
        }
    }

    #[test]
    fn report_round_trip_matches_baselines() {
        let app = workloads::fft::fft(7);
        let params = DesignParams::default().with_overlap_threshold(0.5);
        let report = Pipeline::collect(&app, &params)
            .analyze(&params)
            .synthesize(&Exact::default())
            .expect("ok")
            .report()
            .expect("ok");
        assert_eq!(report.full.label, "full");
        assert_eq!(report.shared.label, "shared");
        assert_eq!(report.avg_based.label, "avg-based");
        assert!(report.component_saving() >= 1.0);
    }
}
