//! Phase 2 — pre-processing: window analysis and conflict extraction.
//!
//! The collected trace is divided into windows of `WS` cycles and the
//! per-window statistics of Definition 2 are computed. Pre-processing then
//! identifies (paper §5):
//!
//! * pairs of targets whose overlap exceeds the threshold in *any* window —
//!   these must go on separate buses (reduces latency and prunes the
//!   search);
//! * pairs of targets with overlapping *critical* streams — separating them
//!   is what makes per-stream real-time guarantees possible;
//! * the `maxtb` cap bounding worst-case serialisation.
//!
//! The conflict relation is carried as a word-parallel bitset
//! [`ConflictGraph`] — the same rows the binding solvers intersect against
//! their per-bus member masks, so phase 2's artifact flows into phase 3
//! without re-encoding.

use crate::params::{DesignParams, Windowing};
use stbus_milp::BindingProblem;
use stbus_traffic::{ConflictGraph, OverlapProfile, Trace, WindowPlan, WindowStats};

/// Products of the pre-processing phase for one crossbar direction.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Windowed traffic statistics.
    pub stats: WindowStats,
    /// Sweep-resident per-pair peak overlaps: re-derives `conflicts` for
    /// any threshold in O(pairs) (see [`Preprocessed::at_threshold`]).
    pub profile: OverlapProfile,
    /// The conflict relation `c(i,j)` of Eq. (2) as a bitset graph.
    pub conflicts: ConflictGraph,
    /// The per-bus target cap in force.
    pub maxtb: usize,
}

impl Preprocessed {
    /// Runs the analysis over an observed trace, honouring the window
    /// layout policy of the parameters.
    #[must_use]
    pub fn analyze(trace: &Trace, params: &DesignParams) -> Self {
        let stats = match params.windowing {
            Windowing::Uniform => WindowStats::analyze(trace, params.window_size),
            Windowing::Adaptive {
                coarse,
                quiet_threshold,
            } => WindowPlan::adaptive(trace, params.window_size, coarse, quiet_threshold)
                .analyze(trace),
        };
        Self::from_stats(stats, params)
    }

    /// Builds the pre-processing artifact from already-computed window
    /// statistics — the entry point sweep runners use to share one window
    /// analysis across many parameter points.
    #[must_use]
    pub fn from_stats(stats: WindowStats, params: &DesignParams) -> Self {
        let profile = stats.overlap_profile();
        Self::from_profile(stats, profile, params)
    }

    /// Assembles the artifact from a window analysis and its extracted
    /// [`OverlapProfile`] (both typically cloned out of a sweep-resident
    /// cache), re-thresholding in O(pairs).
    #[must_use]
    pub fn from_profile(
        stats: WindowStats,
        profile: OverlapProfile,
        params: &DesignParams,
    ) -> Self {
        let conflicts = profile.conflict_graph(params.overlap_threshold);
        Self {
            stats,
            profile,
            conflicts,
            maxtb: params.maxtb,
        }
    }

    /// Re-thresholds this analysis at a new overlap threshold without
    /// re-running the window analysis: the stats and profile are shared
    /// (cloned), only the conflict graph is re-derived — O(pairs) instead
    /// of O(events log events + pairs × windows). Bit-identical to
    /// [`Preprocessed::analyze`] at the same threshold.
    #[must_use]
    pub fn at_threshold(&self, threshold: f64) -> Self {
        Self {
            stats: self.stats.clone(),
            profile: self.profile.clone(),
            conflicts: self.profile.conflict_graph(threshold),
            maxtb: self.maxtb,
        }
    }

    /// Lower bound on the number of buses any feasible design needs:
    /// the max over windows of total demand divided by `WS`, the
    /// greedy-coloring clique bound of the conflict graph (a strictly
    /// stronger certificate than the plain greedy clique on dense graphs,
    /// so the binary search starts higher and exact search prunes
    /// earlier), and the `maxtb` pigeonhole bound.
    #[must_use]
    pub fn bus_lower_bound(&self) -> usize {
        // Per-window bandwidth bound (each window uses its own length, so
        // this stays tight for variable plans).
        let bw = (0..self.stats.num_windows())
            .map(|m| {
                self.stats
                    .window_demand(m)
                    .div_ceil(self.stats.window_len(m))
            })
            .max()
            .unwrap_or(0);
        let bw = usize::try_from(bw).unwrap_or(usize::MAX);
        let clique = self.conflicts.greedy_coloring_bound();
        let pigeonhole = self.stats.num_targets().div_ceil(self.maxtb);
        bw.max(clique).max(pigeonhole).max(1)
    }

    /// Builds the binding problem (Eq. 3–9 data) for a candidate bus count.
    #[must_use]
    pub fn binding_problem(&self, num_buses: usize) -> BindingProblem {
        let n = self.stats.num_targets();
        let demands: Vec<Vec<u64>> = (0..n).map(|t| self.stats.demand_row(t).to_vec()).collect();
        let capacities: Vec<u64> = (0..self.stats.num_windows())
            .map(|m| self.stats.window_len(m))
            .collect();
        let mut problem = BindingProblem::with_capacities(num_buses, capacities, demands)
            .with_maxtb(self.maxtb)
            .with_conflict_graph(self.conflicts.clone());
        problem.set_overlaps(|i, j| self.stats.overlap_matrix().get(i, j));
        problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbus_traffic::{InitiatorId, TargetId, TraceEvent};

    fn two_peak_trace() -> Trace {
        // Two targets fully overlapping in window 0, a third alone later.
        let mut tr = Trace::new(2, 3);
        tr.push(TraceEvent::new(
            InitiatorId::new(0),
            TargetId::new(0),
            0,
            80,
        ));
        tr.push(TraceEvent::new(
            InitiatorId::new(1),
            TargetId::new(1),
            0,
            80,
        ));
        tr.push(TraceEvent::new(
            InitiatorId::new(0),
            TargetId::new(2),
            200,
            40,
        ));
        tr.finish_sorting();
        tr
    }

    fn params() -> DesignParams {
        DesignParams::default()
            .with_window_size(100)
            .with_overlap_threshold(0.5)
    }

    #[test]
    fn analysis_dimensions() {
        let pre = Preprocessed::analyze(&two_peak_trace(), &params());
        assert_eq!(pre.stats.num_targets(), 3);
        assert_eq!(pre.stats.window_size(), 100);
        assert_eq!(pre.maxtb, 4);
    }

    #[test]
    fn overlap_above_threshold_conflicts() {
        // 80-cycle overlap in a 100-cycle window, threshold 0.5 → conflict.
        let pre = Preprocessed::analyze(&two_peak_trace(), &params());
        assert!(pre.conflicts.conflicts(0, 1));
        assert!(!pre.conflicts.conflicts(0, 2));
        assert!(!pre.conflicts.conflicts(1, 2));
    }

    #[test]
    fn lower_bound_combines_three_sources() {
        let pre = Preprocessed::analyze(&two_peak_trace(), &params());
        // Bandwidth: window 0 holds 160 cycles of demand over WS=100 → 2.
        // Clique: the (0,1) conflict also forces 2.
        assert_eq!(pre.bus_lower_bound(), 2);
    }

    #[test]
    fn pigeonhole_bound_kicks_in() {
        let tr = {
            let mut tr = Trace::new(1, 9);
            for t in 0..9 {
                tr.push(TraceEvent::new(
                    InitiatorId::new(0),
                    TargetId::new(t),
                    (t as u64) * 500,
                    10,
                ));
            }
            tr.finish_sorting();
            tr
        };
        let p = DesignParams::default().with_window_size(100).with_maxtb(2);
        let pre = Preprocessed::analyze(&tr, &p);
        assert_eq!(pre.bus_lower_bound(), 5); // ceil(9/2)
    }

    #[test]
    fn adaptive_windowing_reduces_window_count() {
        // A sparse trace with one dense region: adaptive analysis merges
        // the quiet stretches without changing the design outcome.
        let mut tr = Trace::new(1, 2);
        for k in 0..5u64 {
            tr.push(TraceEvent::new(
                InitiatorId::new(0),
                TargetId::new(0),
                k * 30,
                25,
            ));
        }
        tr.push(TraceEvent::new(
            InitiatorId::new(0),
            TargetId::new(1),
            5_000,
            40,
        ));
        tr.finish_sorting();
        let uniform = params().with_window_size(100);
        let adaptive = uniform.clone().with_adaptive_windows(1_600, 0.05);
        let pre_u = Preprocessed::analyze(&tr, &uniform);
        let pre_a = Preprocessed::analyze(&tr, &adaptive);
        assert!(pre_a.stats.num_windows() < pre_u.stats.num_windows());
        // The binding problem still carries one capacity per window.
        let prob = pre_a.binding_problem(2);
        assert_eq!(prob.num_windows(), pre_a.stats.num_windows());
    }

    #[test]
    fn rethreshold_matches_fresh_analysis() {
        let tr = two_peak_trace();
        let base = params();
        let pre = Preprocessed::analyze(&tr, &base);
        for theta in [0.0, 0.1, 0.25, 0.5, 0.9] {
            let fresh = Preprocessed::analyze(&tr, &base.clone().with_overlap_threshold(theta));
            let swept = pre.at_threshold(theta);
            assert_eq!(swept.conflicts, fresh.conflicts, "threshold {theta}");
            assert_eq!(swept.stats, fresh.stats);
            assert_eq!(swept.maxtb, fresh.maxtb);
        }
    }

    #[test]
    fn binding_problem_carries_everything() {
        let pre = Preprocessed::analyze(&two_peak_trace(), &params());
        let problem = pre.binding_problem(2);
        assert_eq!(problem.num_targets(), 3);
        assert_eq!(problem.num_buses(), 2);
        assert!(problem.conflicts(0, 1));
        assert_eq!(problem.overlap(0, 1), 80);
        assert_eq!(problem.window_size(), 100);
        assert_eq!(problem.maxtb(), 4);
    }
}
