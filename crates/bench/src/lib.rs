//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one experiment:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | Table 1 — shared vs full vs designed partial crossbar on Mat2 |
//! | `table2` | Table 2 — bus-count savings across the five suites |
//! | `fig4`   | Fig. 4(a)/(b) — relative avg/max latency, avg-flow vs window design |
//! | `fig5a`  | Fig. 5(a) — crossbar size vs analysis window size |
//! | `fig5b`  | Fig. 5(b) — acceptable window size vs burst size |
//! | `fig6`   | Fig. 6 — crossbar size vs overlap threshold |
//! | `binding_ablation` | §7.3 — random vs optimal binding latency |
//! | `realtime` | §7.3 — latency of critical (real-time) streams |
//! | `solver_ablation` | §6 — specialised solver vs generic MILP runtime |
//! | `fig4_posted` | Fig. 4 sensitivity to master queue depth |
//! | `variable_windows` | §8 future work — adaptive window plans |
//! | `heuristic_ablation` | exact vs heuristic synthesis |
//! | `arbitration_ablation` | arbitration policies on the designed crossbars |
//! | `cost_report` | Table-2 savings as first-order area/energy |
//! | `debug_conflicts` | developer diagnostic: window/conflict dump |
//!
//! The Criterion benches in `benches/` measure the synthesis kernels
//! themselves (window analysis, feasibility search, optimal binding);
//! `benches/phase3.rs` and `benches/gateway_throughput.rs` are the
//! perf-trajectory benches whose numbers are committed to
//! `BENCH_phase3.json` at the workspace root. The snapshot helpers below
//! ([`today_utc`], [`host_warning_json`], [`extract_top_level`],
//! [`merge_top_level`]) keep the two benches' rows from clobbering each
//! other and their warnings machine-readable in one shared shape.
//!
//! Per-application design parameters live in [`suite_params`]; the paper
//! tunes the window size per application (§7.2), and so do we.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use stbus_core::pipeline::Pipeline;
use stbus_core::synthesizer::Exact;
use stbus_core::{Batch, DesignParams, DesignReport};
use stbus_traffic::workloads::{self, Application};

/// The base seed every experiment uses (reproducibility).
pub const SEED: u64 = 0xDA7E_2005;

/// Per-application design parameters — the one pinned table in
/// [`stbus_core::paper_suite_params`], used for the headline tables.
#[must_use]
pub fn suite_params(app_name: &str) -> DesignParams {
    stbus_core::paper_suite_params(app_name)
}

/// Generates the five paper suites with their designated seeds.
#[must_use]
pub fn paper_suite() -> Vec<Application> {
    workloads::paper_suite(SEED)
}

/// Runs the full design flow on one application with its suite parameters.
///
/// # Panics
///
/// Panics if synthesis exceeds solver limits (does not happen for the
/// shipped suites).
#[must_use]
pub fn run_suite_app(app: &Application) -> DesignReport {
    let params = suite_params(app.name());
    let collected = Pipeline::collect(app, &params);
    let analyzed = collected.analyze(&params);
    analyzed
        .synthesize(&Exact::default())
        .and_then(|synthesized| synthesized.report())
        .expect("suite synthesis stays within solver limits")
}

/// Runs the whole paper suite in parallel through [`Batch`], returning
/// one classic [`DesignReport`] per application in suite order.
///
/// # Panics
///
/// Panics if synthesis exceeds solver limits (does not happen for the
/// shipped suites).
#[must_use]
pub fn run_suite() -> Vec<DesignReport> {
    let apps = paper_suite();
    let reports: Vec<DesignReport> = Batch::per_app(&apps, |app| suite_params(app.name()))
        .run()
        .into_iter()
        .map(|point| {
            point
                .result
                .expect("suite synthesis stays within solver limits")
                .into_report()
                .expect("paper baseline set carries full/shared/avg")
        })
        .collect();
    reports
}

/// `YYYY-MM-DD` from the system clock (days-from-civil inverse; no
/// external crates in the offline build). Shared by the snapshotting
/// benches so every committed row is dated the same way.
///
/// # Panics
///
/// Panics if the system clock reports a time before the Unix epoch.
#[must_use]
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days, shifted to the 0000-03-01 era.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// The machine-readable single-core warning every concurrency-sensitive
/// snapshot row carries: `null` on a multi-core host, otherwise a JSON
/// object naming the affected `measure` so trajectory tooling can filter
/// rows by `code` instead of pattern-matching prose.
#[must_use]
pub fn host_warning_json(host_parallelism: usize, measure: &str) -> String {
    if host_parallelism > 1 {
        return String::from("null");
    }
    format!(
        "{{\"code\": \"single_core_host\", \"host_parallelism\": {host_parallelism}, \
         \"measure\": \"{measure}\", \"detail\": \"{measure} measured on a 1-core host \
         reflects OS-timesliced scheduling concurrency, not parallel speedup; capture a \
         multi-core run for the wall-clock win\"}}"
    )
}

/// Locates the value of `key` at nesting depth 1 of a JSON object,
/// returning the byte range of the raw value text.
fn top_level_value_range(json: &str, key: &str) -> Option<(usize, usize)> {
    let bytes = json.as_bytes();
    let needle = format!("\"{key}\"");
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                if depth == 1 && json[i..].starts_with(&needle) {
                    let mut j = i + needle.len();
                    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b':' {
                        j += 1;
                        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                            j += 1;
                        }
                        return Some((j, end_of_value(json, j)?));
                    }
                }
                i = skip_string(bytes, i)?;
                continue;
            }
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Returns the index just past the string opening at `bytes[start]`.
fn skip_string(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

/// Returns the index just past the JSON value starting at `start`.
fn end_of_value(json: &str, start: usize) -> Option<usize> {
    let bytes = json.as_bytes();
    match bytes.get(start)? {
        b'"' => skip_string(bytes, start),
        b'{' | b'[' => {
            let mut depth = 0i32;
            let mut i = start;
            while i < bytes.len() {
                match bytes[i] {
                    b'"' => {
                        i = skip_string(bytes, i)?;
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(i + 1);
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            None
        }
        _ => {
            // Number / true / false / null: runs to the next delimiter.
            let mut i = start;
            while i < bytes.len()
                && !matches!(bytes[i], b',' | b'}' | b']')
                && !bytes[i].is_ascii_whitespace()
            {
                i += 1;
            }
            Some(i)
        }
    }
}

/// Extracts the raw value text of a top-level key from a JSON-object
/// snapshot (`None` when absent). Used by each snapshotting bench to
/// carry the *other* bench's row forward when it rewrites the file.
#[must_use]
pub fn extract_top_level(json: &str, key: &str) -> Option<String> {
    top_level_value_range(json, key).map(|(start, end)| json[start..end].to_string())
}

/// Returns `json` with the top-level `key` replaced by (or, when
/// absent, appended as) the raw value text `value`.
///
/// # Panics
///
/// Panics if `json` is not a JSON object (no closing brace to append
/// before).
#[must_use]
pub fn merge_top_level(json: &str, key: &str, value: &str) -> String {
    if let Some((start, end)) = top_level_value_range(json, key) {
        return format!("{}{}{}", &json[..start], value, &json[end..]);
    }
    let close = json.rfind('}').expect("snapshot is a JSON object");
    let head = json[..close].trim_end();
    let comma = if head.ends_with('{') { "" } else { "," };
    format!("{head}{comma}\n  \"{key}\": {value}\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_distinguish_apps() {
        assert!(suite_params("FFT").response_scale < 1.0);
        assert_eq!(suite_params("Mat2").response_scale, 1.0);
    }

    #[test]
    fn suite_has_five_apps() {
        assert_eq!(paper_suite().len(), 5);
    }

    #[test]
    fn warning_is_null_on_multicore_and_structured_on_one_core() {
        assert_eq!(host_warning_json(4, "peak_busy_workers"), "null");
        let warning = host_warning_json(1, "requests_per_sec");
        assert!(warning.starts_with("{\"code\": \"single_core_host\""));
        assert!(warning.contains("\"measure\": \"requests_per_sec\""));
        assert!(warning.contains("\"host_parallelism\": 1"));
    }

    const SNAPSHOT: &str = "{\n  \"bench\": \"x\",\n  \
        \"sizes\": [{\"targets\": 12, \"label\": \"a}b\"}],\n  \
        \"row\": {\"nested\": {\"deep\": [1, 2]}, \"warning\": null}\n}\n";

    #[test]
    fn extract_finds_only_top_level_keys() {
        assert_eq!(
            extract_top_level(SNAPSHOT, "bench").as_deref(),
            Some("\"x\"")
        );
        assert_eq!(
            extract_top_level(SNAPSHOT, "sizes").as_deref(),
            Some("[{\"targets\": 12, \"label\": \"a}b\"}]"),
            "braces inside strings must not unbalance the scan"
        );
        assert_eq!(
            extract_top_level(SNAPSHOT, "row").as_deref(),
            Some("{\"nested\": {\"deep\": [1, 2]}, \"warning\": null}")
        );
        // `targets` and `nested` exist only at depth > 1.
        assert_eq!(extract_top_level(SNAPSHOT, "targets"), None);
        assert_eq!(extract_top_level(SNAPSHOT, "nested"), None);
    }

    #[test]
    fn merge_replaces_in_place_and_appends_when_absent() {
        let replaced = merge_top_level(SNAPSHOT, "row", "{\"fresh\": true}");
        assert!(replaced.contains("\"row\": {\"fresh\": true}"));
        assert!(!replaced.contains("nested"));
        assert_eq!(
            extract_top_level(&replaced, "sizes"),
            extract_top_level(SNAPSHOT, "sizes")
        );

        let appended = merge_top_level(SNAPSHOT, "extra", "{\"v\": 1}");
        assert_eq!(
            extract_top_level(&appended, "extra").as_deref(),
            Some("{\"v\": 1}")
        );
        assert_eq!(
            extract_top_level(&appended, "bench").as_deref(),
            Some("\"x\"")
        );
        // Round trip: the merged text is still a scannable object.
        let round = merge_top_level(&appended, "extra", "null");
        assert_eq!(extract_top_level(&round, "extra").as_deref(), Some("null"));

        let from_empty = merge_top_level("{}\n", "only", "3");
        assert_eq!(extract_top_level(&from_empty, "only").as_deref(), Some("3"));
    }
}
