//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one experiment:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | Table 1 — shared vs full vs designed partial crossbar on Mat2 |
//! | `table2` | Table 2 — bus-count savings across the five suites |
//! | `fig4`   | Fig. 4(a)/(b) — relative avg/max latency, avg-flow vs window design |
//! | `fig5a`  | Fig. 5(a) — crossbar size vs analysis window size |
//! | `fig5b`  | Fig. 5(b) — acceptable window size vs burst size |
//! | `fig6`   | Fig. 6 — crossbar size vs overlap threshold |
//! | `binding_ablation` | §7.3 — random vs optimal binding latency |
//! | `realtime` | §7.3 — latency of critical (real-time) streams |
//! | `solver_ablation` | §6 — specialised solver vs generic MILP runtime |
//! | `fig4_posted` | Fig. 4 sensitivity to master queue depth |
//! | `variable_windows` | §8 future work — adaptive window plans |
//! | `heuristic_ablation` | exact vs heuristic synthesis |
//! | `arbitration_ablation` | arbitration policies on the designed crossbars |
//! | `cost_report` | Table-2 savings as first-order area/energy |
//! | `debug_conflicts` | developer diagnostic: window/conflict dump |
//!
//! The Criterion benches in `benches/` measure the synthesis kernels
//! themselves (window analysis, feasibility search, optimal binding).
//!
//! Per-application design parameters live in [`suite_params`]; the paper
//! tunes the window size per application (§7.2), and so do we.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use stbus_core::pipeline::Pipeline;
use stbus_core::synthesizer::Exact;
use stbus_core::{Batch, DesignParams, DesignReport};
use stbus_traffic::workloads::{self, Application};

/// The base seed every experiment uses (reproducibility).
pub const SEED: u64 = 0xDA7E_2005;

/// Per-application design parameters.
///
/// The paper tunes the analysis parameters per application (window size
/// roughly 1–4× the typical burst, threshold 10 % for aggressive designs
/// and 30–40 % for conservative ones). These are the settings used for the
/// headline tables.
#[must_use]
pub fn suite_params(app_name: &str) -> DesignParams {
    let base = DesignParams::default();
    match app_name {
        // Aggressive threshold (paper §7.4: ~10–15 % for aggressive
        // designs) — the matrix pipelines and the DES pipeline have clear
        // phase structure worth separating.
        "Mat1" | "Mat2" | "DES" => base.with_overlap_threshold(0.15),
        // FFT's barrier traffic overlaps uniformly: only the conservative
        // 50 % cap is meaningful (below it, every pair conflicts and the
        // "designed" crossbar degenerates to a full one). Responses are
        // short acknowledgements for the write-heavy exchanges.
        "FFT" => base.with_overlap_threshold(0.50).with_response_scale(0.9),
        _ => base,
    }
}

/// Generates the five paper suites with their designated seeds.
#[must_use]
pub fn paper_suite() -> Vec<Application> {
    workloads::paper_suite(SEED)
}

/// Runs the full design flow on one application with its suite parameters.
///
/// # Panics
///
/// Panics if synthesis exceeds solver limits (does not happen for the
/// shipped suites).
#[must_use]
pub fn run_suite_app(app: &Application) -> DesignReport {
    let params = suite_params(app.name());
    let collected = Pipeline::collect(app, &params);
    let analyzed = collected.analyze(&params);
    analyzed
        .synthesize(&Exact::default())
        .and_then(|synthesized| synthesized.report())
        .expect("suite synthesis stays within solver limits")
}

/// Runs the whole paper suite in parallel through [`Batch`], returning
/// one classic [`DesignReport`] per application in suite order.
///
/// # Panics
///
/// Panics if synthesis exceeds solver limits (does not happen for the
/// shipped suites).
#[must_use]
pub fn run_suite() -> Vec<DesignReport> {
    let apps = paper_suite();
    let reports: Vec<DesignReport> = Batch::per_app(&apps, |app| suite_params(app.name()))
        .run()
        .into_iter()
        .map(|point| {
            point
                .result
                .expect("suite synthesis stays within solver limits")
                .into_report()
                .expect("paper baseline set carries full/shared/avg")
        })
        .collect();
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_distinguish_apps() {
        assert!(suite_params("FFT").response_scale < 1.0);
        assert_eq!(suite_params("Mat2").response_scale, 1.0);
    }

    #[test]
    fn suite_has_five_apps() {
        assert_eq!(paper_suite().len(), 5);
    }
}
