//! §7.3 — real-time streams: critical traffic on the designed crossbar
//! achieves latency close to the full-crossbar ideal.
//!
//! Paper reference: "Experimental results on the benchmark applications
//! show a very low packet latency (almost equal to the latency of perfect
//! communication using a full crossbar) for such streams."

use stbus_bench::run_suite;
use stbus_report::Table;

fn main() {
    let mut table = Table::new(vec![
        "Application",
        "critical packets",
        "designed crit avg lat",
        "full crit avg lat",
        "designed/full",
    ]);
    // The five suite evaluations run in parallel through the batch runner.
    for report in run_suite() {
        let designed = report.designed.validation.critical_latency();
        let full = report.full.validation.critical_latency();
        if designed.count == 0 {
            table.row(vec![
                report.app_name.clone(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        table.row(vec![
            report.app_name.clone(),
            format!("{}", designed.count),
            format!("{:.1}", designed.mean),
            format!("{:.1}", full.mean),
            format!("{:.2}", designed.mean / full.mean),
        ]);
    }
    println!("Real-time streams (paper: designed ~= full-crossbar latency)\n");
    println!("{table}");
}
