//! §7.3 — real-time streams: critical traffic on the designed crossbar
//! achieves latency close to the full-crossbar ideal.
//!
//! Paper reference: "Experimental results on the benchmark applications
//! show a very low packet latency (almost equal to the latency of perfect
//! communication using a full crossbar) for such streams."

use stbus_bench::{paper_suite, run_suite_app};
use stbus_report::Table;

fn main() {
    let mut table = Table::new(vec![
        "Application",
        "critical packets",
        "designed crit avg lat",
        "full crit avg lat",
        "designed/full",
    ]);
    for app in paper_suite() {
        let report = run_suite_app(&app);
        let designed = report.designed.validation.critical_latency();
        let full = report.full.validation.critical_latency();
        if designed.count == 0 {
            table.row(vec![
                app.name().to_string(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        table.row(vec![
            app.name().to_string(),
            format!("{}", designed.count),
            format!("{:.1}", designed.mean),
            format!("{:.1}", full.mean),
            format!("{:.2}", designed.mean / full.mean),
        ]);
    }
    println!("Real-time streams (paper: designed ~= full-crossbar latency)\n");
    println!("{table}");
}
