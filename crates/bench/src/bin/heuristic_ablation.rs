//! Exact vs heuristic vs portfolio synthesis: solution quality and
//! runtime, through the [`Synthesizer`] strategy interface.
//!
//! The exact branch-and-bound is the production path for STbus-scale
//! crossbars (≤ 32 targets). The greedy + local-search heuristic trades
//! optimality proofs for polynomial time, and the portfolio strategy runs
//! exact within a node budget with heuristic fallback; this experiment
//! quantifies the trade on the paper suites and on a 32-target stress
//! instance.

use stbus_bench::{paper_suite, suite_params, SEED};
use stbus_core::{DesignParams, Exact, Heuristic, Pipeline, Portfolio, Preprocessed, Synthesizer};
use stbus_milp::SolveLimits;
use stbus_report::Table;
use stbus_traffic::workloads::synthetic::{self, SyntheticParams};
use std::time::Instant;

fn main() {
    let mut table = Table::new(vec![
        "Instance",
        "exact buses",
        "heur buses",
        "exact maxov",
        "heur maxov",
        "exact time",
        "heur time",
        "portfolio engine",
    ]);
    for app in paper_suite() {
        let params = suite_params(app.name());
        let collected = Pipeline::collect(&app, &params);
        let analyzed = collected.analyze(&params);
        row(&mut table, app.name(), analyzed.pre_it(), &params);
    }

    // Stress instance: 16 processors + 16 memories (32 targets across both
    // directions is the STbus architectural maximum).
    let stress = synthetic::with_params(
        &SyntheticParams {
            processors: 16,
            ..SyntheticParams::default()
        },
        SEED,
    );
    let params = DesignParams::default();
    let collected = Pipeline::collect(&stress, &params);
    let analyzed = collected.analyze(&params);
    row(&mut table, "Stress16", analyzed.pre_it(), &params);

    println!("Exact vs heuristic synthesis (IT direction):\n");
    println!("{table}");
}

fn row(table: &mut Table, name: &str, pre: &Preprocessed, params: &DesignParams) {
    let t0 = Instant::now();
    let exact = Exact::default().synthesize(pre, params).expect("exact ok");
    let exact_time = t0.elapsed();
    let t0 = Instant::now();
    let heur = Heuristic::default()
        .synthesize(pre, params)
        .expect("heuristic ok");
    let heur_time = t0.elapsed();
    // A mid-sized budget: big enough for the easy suites, small enough
    // that pathological instances would fall back.
    let portfolio = Portfolio::with_budget(SolveLimits::nodes(200_000))
        .synthesize(pre, params)
        .expect("portfolio never fails");
    table.row(vec![
        name.to_string(),
        format!("{}", exact.num_buses),
        format!("{}", heur.num_buses),
        format!("{}", exact.max_bus_overlap),
        format!("{}", heur.max_bus_overlap),
        format!("{exact_time:.2?}"),
        format!("{heur_time:.2?}"),
        format!("{}", portfolio.engine),
    ]);
}
