//! §7.3 — the effect of binding: random constraint-satisfying binding vs
//! the overlap-minimising optimal binding, at the same crossbar size.
//!
//! Paper reference: random binding incurs on average 2.1× higher average
//! latency than the optimal binding.
//!
//! To isolate the binding objective (MILP-2) from the pre-processing
//! conflicts — which already encode much of the placement structure — the
//! comparison runs in the *conservative* regime (threshold at the 50 % cap
//! and a 4× window), exactly as the paper isolates "random binding …
//! satisfying the design constraints (Equations 3–9)": with loose windows,
//! many bindings are feasible and only the overlap objective separates the
//! good ones from the bad ones.

use stbus_bench::{paper_suite, suite_params, SEED};
use stbus_core::{baselines, phase4, Exact, Pipeline, Synthesizer};
use stbus_report::Table;

fn main() {
    let mut table = Table::new(vec![
        "Application",
        "optimal avg lat",
        "random avg lat (mean of 7)",
        "random/optimal",
    ]);
    let mut ratios = Vec::new();
    for app in paper_suite() {
        let params = suite_params(app.name())
            .with_overlap_threshold(0.5)
            .with_window_size(4_000);
        let collected = Pipeline::collect(&app, &params);
        let analyzed = collected.analyze(&params);
        let (pre_it, pre_ti) = (analyzed.pre_it(), analyzed.pre_ti());
        let exact = Exact::default();
        let it = exact.synthesize(pre_it, &params).expect("synthesis ok");
        let ti = exact.synthesize(pre_ti, &params).expect("synthesis ok");
        let optimal = phase4::validate(&app.trace, &it.config, &ti.config, &params);

        let mut random_lat = Vec::new();
        for seed in 0..7u64 {
            let r_it = baselines::random_binding_design(pre_it, it.num_buses, SEED ^ seed, &params)
                .expect("within limits")
                .expect("feasible at optimal size");
            let r_ti = baselines::random_binding_design(
                pre_ti,
                ti.num_buses,
                SEED ^ (seed + 100),
                &params,
            )
            .expect("within limits")
            .expect("feasible at optimal size");
            let v = phase4::validate(&app.trace, &r_it.config, &r_ti.config, &params);
            random_lat.push(v.avg_latency());
        }
        let random_mean = random_lat.iter().sum::<f64>() / random_lat.len() as f64;
        let ratio = random_mean / optimal.avg_latency();
        ratios.push(ratio);
        table.row(vec![
            app.name().to_string(),
            format!("{:.1}", optimal.avg_latency()),
            format!("{random_mean:.1}"),
            format!("{ratio:.2}"),
        ]);
    }
    println!("Binding ablation (paper: random binding ~2.1x higher average latency)\n");
    println!("{table}");
    println!(
        "mean ratio across suites: {:.2}",
        ratios.iter().sum::<f64>() / ratios.len() as f64
    );
}
