//! Fig. 4 sensitivity study — the average-flow vs window-design latency
//! gap as a function of master-side queue depth.
//!
//! The baseline `fig4` binary models blocking single-outstanding masters,
//! which bounds how badly an under-provisioned design can degrade (the
//! measured gap is ~2–4× vs the paper's 4–7×). MPARM's ARM cores post
//! multiple outstanding transactions; replaying the same experiment with
//! posted masters recovers the paper's regime.
//!
//! The queue depth changes the collected traffic (it is part of the
//! [`stbus_core::CollectionKey`]), so each depth is its own batch over
//! the suite — three parallel batches, each collecting once per app.

use stbus_bench::{paper_suite, suite_params};
use stbus_core::Batch;
use stbus_report::Table;

fn main() {
    let apps = paper_suite();
    let depths = [1usize, 2, 4];
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for depth in depths {
        let results = Batch::per_app(&apps, |app| {
            suite_params(app.name()).with_max_outstanding(depth)
        })
        .run();
        columns.push(
            results
                .into_iter()
                .map(|point| {
                    let report = point
                        .result
                        .expect("flow succeeds")
                        .into_report()
                        .expect("paper baseline set");
                    report.avg_based.avg_latency / report.designed.avg_latency
                })
                .collect(),
        );
    }

    let mut table = Table::new(vec![
        "Application",
        "depth=1 avg/win",
        "depth=2 avg/win",
        "depth=4 avg/win",
    ]);
    for (a, app) in apps.iter().enumerate() {
        let mut cells = vec![app.name().to_string()];
        for column in &columns {
            cells.push(format!("{:.2}", column[a]));
        }
        table.row(cells);
    }
    println!(
        "Fig 4 sensitivity: avg-based / window-design average-latency ratio vs\n\
         master queue depth (paper regime: 4-7x)\n"
    );
    println!("{table}");
}
