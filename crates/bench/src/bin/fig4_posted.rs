//! Fig. 4 sensitivity study — the average-flow vs window-design latency
//! gap as a function of master-side queue depth.
//!
//! The baseline `fig4` binary models blocking single-outstanding masters,
//! which bounds how badly an under-provisioned design can degrade (the
//! measured gap is ~2–4× vs the paper's 4–7×). MPARM's ARM cores post
//! multiple outstanding transactions; replaying the same experiment with
//! posted masters recovers the paper's regime.

use stbus_bench::{paper_suite, suite_params};
use stbus_core::DesignFlow;
use stbus_report::Table;

fn main() {
    let mut table = Table::new(vec![
        "Application",
        "depth=1 avg/win",
        "depth=2 avg/win",
        "depth=4 avg/win",
    ]);
    for app in paper_suite() {
        let mut cells = vec![app.name().to_string()];
        for depth in [1usize, 2, 4] {
            let params = suite_params(app.name()).with_max_outstanding(depth);
            let report = DesignFlow::new(params).run(&app).expect("flow succeeds");
            cells.push(format!(
                "{:.2}",
                report.avg_based.avg_latency / report.designed.avg_latency
            ));
        }
        table.row(cells);
    }
    println!(
        "Fig 4 sensitivity: avg-based / window-design average-latency ratio vs\n\
         master queue depth (paper regime: 4-7x)\n"
    );
    println!("{table}");
}
