//! §6 ablation — the specialised binding solver vs the generic
//! simplex/branch-and-bound MILP stack (the "CPLEX stand-in"), plus the
//! effect of the pre-processing conflicts on synthesis time (the paper
//! notes pre-processing "can also speed up the process of finding the
//! optimal crossbar configuration").

use stbus_bench::{paper_suite, suite_params};
use stbus_core::{phase3, Pipeline};
use stbus_milp::{crossbar, SolveLimits};
use stbus_report::Table;
use std::time::Instant;

fn main() {
    // --- Specialised vs generic solver on the Mat2 feasibility MILP. ---
    let app = paper_suite()
        .into_iter()
        .find(|a| a.name() == "Mat2")
        .expect("Mat2 present");
    let params = suite_params(app.name());
    let collected = Pipeline::collect(&app, &params);
    let analyzed = collected.analyze(&params);
    let pre = analyzed.pre_it();

    let mut table = Table::new(vec!["buses", "specialised", "generic MILP", "agree"]);
    for buses in 2..=4usize {
        let problem = pre.binding_problem(buses);
        let t0 = Instant::now();
        let fast = problem
            .find_feasible(&SolveLimits::default())
            .expect("within limits");
        let fast_time = t0.elapsed();
        let t0 = Instant::now();
        let slow = crossbar::solve_feasibility_milp(&problem);
        let slow_time = t0.elapsed();
        table.row(vec![
            format!("{buses}"),
            format!("{:?} ({fast_time:.2?})", fast.is_some()),
            format!("{:?} ({slow_time:.2?})", slow.is_some()),
            format!("{}", fast.is_some() == slow.is_some()),
        ]);
    }
    println!("Solver ablation on Mat2 IT feasibility (MILP-1):\n\n{table}");

    // --- Pre-processing on/off synthesis time. ---
    let mut table = Table::new(vec![
        "Application",
        "with conflicts",
        "without conflicts",
        "same size",
    ]);
    for app in paper_suite() {
        let params = suite_params(app.name());
        // One collection, two analyses: with conflicts and with the
        // threshold opened to the 50% cap (conflict-free pre-processing).
        let collected = Pipeline::collect(&app, &params);
        let analyzed = collected.analyze(&params);
        let t0 = Instant::now();
        let with = phase3::synthesize(analyzed.pre_it(), &params).expect("ok");
        let with_time = t0.elapsed();

        let no_conflict_params = params.clone().with_overlap_threshold(0.5);
        let analyzed2 = collected.analyze(&no_conflict_params);
        let t0 = Instant::now();
        let without = phase3::synthesize(analyzed2.pre_it(), &no_conflict_params).expect("ok");
        let without_time = t0.elapsed();
        table.row(vec![
            app.name().to_string(),
            format!("{} buses ({with_time:.2?})", with.num_buses),
            format!("{} buses ({without_time:.2?})", without.num_buses),
            format!("{}", with.num_buses == without.num_buses),
        ]);
    }
    println!("\nPre-processing ablation (IT direction):\n\n{table}");
}
