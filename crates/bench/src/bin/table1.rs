//! Table 1 — crossbar performance and cost on the 21-core Mat2 benchmark.
//!
//! Paper reference:
//!
//! | Type    | Avg lat | Max lat | Size ratio |
//! |---------|--------:|--------:|-----------:|
//! | shared  |    35.1 |      51 |          1 |
//! | full    |       6 |       9 |       10.5 |
//! | partial |     9.9 |      20 |          4 |
//!
//! The size ratio is the total bus count (both crossbars) normalised to the
//! shared-bus system (2 buses).

use stbus_bench::{paper_suite, run_suite_app};
use stbus_report::Table;

fn main() {
    let app = paper_suite()
        .into_iter()
        .find(|a| a.name() == "Mat2")
        .expect("Mat2 present");
    let report = run_suite_app(&app);

    let shared_buses = report.shared.total_buses() as f64;
    let mut table = Table::new(vec![
        "Type",
        "Average Lat (in cy)",
        "Maximum Lat (in cy)",
        "Size Ratio",
    ]);
    for eval in [&report.shared, &report.full, &report.designed] {
        let label = if eval.label == "designed" {
            "partial (designed)"
        } else {
            &eval.label
        };
        table.row(vec![
            label.to_string(),
            format!("{:.1}", eval.avg_latency),
            format!("{}", eval.max_latency),
            format!("{:.2}", eval.total_buses() as f64 / shared_buses),
        ]);
    }
    println!("Table 1: crossbar performance and cost (Mat2, 21 cores)");
    println!("Paper:   shared 35.1/51/1  full 6/9/10.5  partial 9.9/20/4\n");
    println!("{table}");
    println!(
        "designed configuration: IT {} buses, TI {} buses",
        report.it_synthesis.num_buses, report.ti_synthesis.num_buses
    );
}
