//! §8 future-work extension — variable simulation window sizes.
//!
//! The paper closes with: "In future, we plan to analyze the effect of
//! using variable simulation window sizes for the design for guaranteeing
//! Quality-of-Service (QoS) for applications." This experiment implements
//! that direction: activity-adaptive windows keep fine resolution where
//! traffic is dense (preserving the design quality of small windows) and
//! merge quiet stretches (shrinking the constraint system the MILP has to
//! carry).
//!
//! The uniform and adaptive designs are two analysis points on *one*
//! phase-1 [`Collected`](stbus_core::pipeline::Collected) artifact per
//! application — the windowing policy does not touch the collected
//! traffic, so the staged pipeline pays the reference simulation once.

use stbus_bench::{paper_suite, suite_params};
use stbus_core::{phase1, phase4, Exact, Pipeline, Synthesizer};
use stbus_report::Table;
use stbus_sim::CrossbarConfig;
use std::time::Instant;

fn main() {
    let mut table = Table::new(vec![
        "Application",
        "uniform windows",
        "adaptive windows",
        "uniform IT buses",
        "adaptive IT buses",
        "uniform synth time",
        "adaptive synth time",
        "adaptive avg lat",
    ]);
    let collections_before = phase1::collect_runs();
    let exact = Exact::default();
    for app in paper_suite() {
        let uniform = suite_params(app.name());
        let adaptive = uniform
            .clone()
            .with_adaptive_windows(8 * uniform.window_size, 0.05);

        // Phase 1 once; both window plans analyse the same artifact.
        let collected = Pipeline::collect(&app, &uniform);
        let analyzed_u = collected.analyze(&uniform);
        let analyzed_a = collected.analyze(&adaptive);

        let t0 = Instant::now();
        let out_u = exact.synthesize(analyzed_u.pre_it(), &uniform).expect("ok");
        let time_u = t0.elapsed();
        let t0 = Instant::now();
        let out_a = exact
            .synthesize(analyzed_a.pre_it(), &adaptive)
            .expect("ok");
        let time_a = t0.elapsed();

        let validation = phase4::validate(
            &app.trace,
            &out_a.config,
            &CrossbarConfig::full(app.spec.num_initiators()),
            &adaptive,
        );

        table.row(vec![
            app.name().to_string(),
            format!("{}", analyzed_u.pre_it().stats.num_windows()),
            format!("{}", analyzed_a.pre_it().stats.num_windows()),
            format!("{}", out_u.num_buses),
            format!("{}", out_a.num_buses),
            format!("{time_u:.2?}"),
            format!("{time_a:.2?}"),
            format!("{:.1}", validation.avg_latency()),
        ]);
    }
    let collections = phase1::collect_runs() - collections_before;
    assert_eq!(
        collections, 5,
        "one phase-1 collection per application, shared by both window plans"
    );
    println!(
        "Variable window sizes (paper §8 future work): adaptive plans merge\n\
         quiet windows while dense regions keep the fine resolution.\n"
    );
    println!("{table}");
    println!("\nphase-1 collections: {collections} (2 window plans x 5 apps = 10 analyses)");
}
