//! §8 future-work extension — variable simulation window sizes.
//!
//! The paper closes with: "In future, we plan to analyze the effect of
//! using variable simulation window sizes for the design for guaranteeing
//! Quality-of-Service (QoS) for applications." This experiment implements
//! that direction: activity-adaptive windows keep fine resolution where
//! traffic is dense (preserving the design quality of small windows) and
//! merge quiet stretches (shrinking the constraint system the MILP has to
//! carry).

use stbus_bench::{paper_suite, suite_params};
use stbus_core::{phase1, phase3, phase4, Preprocessed};
use stbus_report::Table;
use stbus_sim::CrossbarConfig;
use std::time::Instant;

fn main() {
    let mut table = Table::new(vec![
        "Application",
        "uniform windows",
        "adaptive windows",
        "uniform IT buses",
        "adaptive IT buses",
        "uniform synth time",
        "adaptive synth time",
        "adaptive avg lat",
    ]);
    for app in paper_suite() {
        let uniform = suite_params(app.name());
        let adaptive = uniform
            .clone()
            .with_adaptive_windows(8 * uniform.window_size, 0.05);

        let collected = phase1::collect(&app, &uniform);
        let pre_u = Preprocessed::analyze(&collected.it_trace, &uniform);
        let pre_a = Preprocessed::analyze(&collected.it_trace, &adaptive);

        let t0 = Instant::now();
        let out_u = phase3::synthesize(&pre_u, &uniform).expect("ok");
        let time_u = t0.elapsed();
        let t0 = Instant::now();
        let out_a = phase3::synthesize(&pre_a, &adaptive).expect("ok");
        let time_a = t0.elapsed();

        let validation = phase4::validate(
            &app.trace,
            &out_a.config,
            &CrossbarConfig::full(app.spec.num_initiators()),
            &adaptive,
        );

        table.row(vec![
            app.name().to_string(),
            format!("{}", pre_u.stats.num_windows()),
            format!("{}", pre_a.stats.num_windows()),
            format!("{}", out_u.num_buses),
            format!("{}", out_a.num_buses),
            format!("{time_u:.2?}"),
            format!("{time_a:.2?}"),
            format!("{:.1}", validation.avg_latency()),
        ]);
    }
    println!(
        "Variable window sizes (paper §8 future work): adaptive plans merge\n\
         quiet windows while dense regions keep the fine resolution.\n"
    );
    println!("{table}");
}
