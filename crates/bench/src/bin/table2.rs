//! Table 2 — crossbar component savings across the five benchmark suites.
//!
//! Paper reference (bus counts, full vs designed, ratio):
//! Mat1 25→8 (3.13), Mat2 21→6 (3.5), FFT 29→15 (1.93),
//! QSort 15→6 (2.5), DES 19→6 (3.12).

use stbus_bench::run_suite;
use stbus_report::Table;

fn main() {
    let mut table = Table::new(vec![
        "Application",
        "Full crossbar bus count",
        "Designed crossbar bus count",
        "Ratio",
        "IT buses",
        "TI buses",
        "Avg lat (designed)",
        "Avg lat (full)",
    ]);
    // The five suite evaluations run in parallel through the batch runner.
    for report in run_suite() {
        table.row(vec![
            report.app_name.clone(),
            format!("{}", report.full.total_buses()),
            format!("{}", report.designed.total_buses()),
            format!("{:.2}", report.component_saving()),
            format!("{}", report.it_synthesis.num_buses),
            format!("{}", report.ti_synthesis.num_buses),
            format!("{:.1}", report.designed.avg_latency),
            format!("{:.1}", report.full.avg_latency),
        ]);
    }
    println!("Table 2: component savings (paper: 3.13 / 3.5 / 1.93 / 2.5 / 3.12)\n");
    println!("{table}");
}
