//! Fig. 5(b) — acceptable window size vs application burst size.
//!
//! For each typical burst size the "acceptable" window is the smallest
//! analysis window whose design already reaches the economical size the
//! methodology converges to for that burst (the knee of Fig. 5a). The
//! paper reports a near-linear relation (window ≈ a few × burst).
//!
//! Each burst-size application is collected once; the window search then
//! re-analyses that artifact per candidate window.

use stbus_bench::SEED;
use stbus_core::pipeline::Collected;
use stbus_core::{DesignParams, Exact, Pipeline, Synthesizer};
use stbus_report::Series;
use stbus_traffic::workloads::synthetic::{self, SyntheticParams};

fn design_size(collected: &Collected<'_>, ws: u64) -> usize {
    let params = DesignParams::default().with_window_size(ws);
    let analyzed = collected.analyze(&params);
    Exact::default()
        .synthesize(analyzed.pre_it(), &params)
        .expect("synthesis ok")
        .num_buses
}

fn main() {
    let mut series = Series::new("acceptable window size vs burst size (Fig 5b)");
    println!("burst size | converged size | acceptable window");
    println!("-----------+----------------+------------------");
    for burst in [1_000u64, 2_000, 3_000, 4_000, 5_000] {
        let app = synthetic::with_params(
            &SyntheticParams::default().with_burst_span(burst),
            SEED.wrapping_add(burst),
        );
        let collected = Pipeline::collect(&app, &DesignParams::default());
        // The economical size the design converges to for large windows.
        let converged = design_size(&collected, 4 * burst);
        // Smallest window (on a burst-relative grid) reaching that size.
        let mut acceptable = 4 * burst;
        for frac_num in 1..=16u64 {
            let ws = (burst * frac_num) / 4; // burst/4 steps
            if ws == 0 {
                continue;
            }
            if design_size(&collected, ws) <= converged {
                acceptable = ws;
                break;
            }
        }
        series.point(burst as f64, acceptable as f64);
        println!("{burst:>10} | {converged:>14} | {acceptable:>17}");
    }
    println!();
    println!("{}", series.to_csv());
    // Least-squares slope through the origin, for the linearity claim.
    let pts = series.points();
    let slope: f64 =
        pts.iter().map(|&(x, y)| x * y).sum::<f64>() / pts.iter().map(|&(x, _)| x * x).sum::<f64>();
    println!("fitted window/burst slope: {slope:.2} (paper: roughly linear)");
}
