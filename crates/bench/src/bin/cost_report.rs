//! Area/energy view of the Table-2 savings.
//!
//! The paper motivates partial crossbars with "reduction in number of
//! communication components used …, design area and design power"; this
//! experiment expresses the designed-vs-full saving in the first-order
//! area/energy model of [`stbus_sim::cost`].

use stbus_bench::run_suite;
use stbus_report::Table;
use stbus_sim::CostModel;

fn main() {
    let model = CostModel::default();
    let mut table = Table::new(vec![
        "Application",
        "area designed",
        "area full",
        "area saving",
        "energy designed",
        "energy full",
        "energy saving",
    ]);
    // The five suite evaluations run in parallel through the batch runner.
    for report in run_suite() {
        let ni = report.num_initiators;
        let nt = report.num_targets;
        let cost = |eval: &stbus_core::ConfigEval| {
            // Request path + response path (the TI crossbar serves the
            // targets as masters).
            let it = model.estimate(&eval.it_config, ni, &eval.validation.it_report);
            let ti = model.estimate(&eval.ti_config, nt, &eval.validation.ti_report);
            (it.area + ti.area, it.total_energy() + ti.total_energy())
        };
        let (designed_area, designed_energy) = cost(&report.designed);
        let (full_area, full_energy) = cost(&report.full);
        table.row(vec![
            report.app_name.clone(),
            format!("{designed_area:.1}"),
            format!("{full_area:.1}"),
            format!("{:.2}x", full_area / designed_area),
            format!("{designed_energy:.0}"),
            format!("{full_energy:.0}"),
            format!("{:.2}x", full_energy / designed_energy),
        ]);
    }
    println!(
        "Area/energy savings of the designed crossbars vs full crossbars\n\
         (relative units; dynamic energy tracks traffic, leakage tracks the\n\
         instantiated buses)\n"
    );
    println!("{table}");
}
