//! Fig. 4 — relative packet latencies: average-flow design vs window
//! design, normalised to the full crossbar.
//!
//! Paper reference: the `avg` bars sit 4–7× above the full crossbar while
//! the `win` bars stay within a small factor of it, across all five suites.

use stbus_bench::run_suite;
use stbus_report::Table;

fn main() {
    let mut fig4a = Table::new(vec!["Application", "avg", "win"]);
    let mut fig4b = Table::new(vec!["Application", "avg", "win"]);
    let mut detail = Table::new(vec![
        "Application",
        "full lat",
        "designed lat",
        "avg-based lat",
        "avg buses",
        "designed buses",
        "avg/win ratio",
    ]);
    // The five suite evaluations run in parallel through the batch runner.
    for report in run_suite() {
        fig4a.row(vec![
            report.app_name.clone(),
            format!("{:.2}", report.relative_avg_latency(&report.avg_based)),
            format!("{:.2}", report.relative_avg_latency(&report.designed)),
        ]);
        fig4b.row(vec![
            report.app_name.clone(),
            format!("{:.2}", report.relative_max_latency(&report.avg_based)),
            format!("{:.2}", report.relative_max_latency(&report.designed)),
        ]);
        detail.row(vec![
            report.app_name.clone(),
            format!("{:.1}", report.full.avg_latency),
            format!("{:.1}", report.designed.avg_latency),
            format!("{:.1}", report.avg_based.avg_latency),
            format!("{}", report.avg_based.total_buses()),
            format!("{}", report.designed.total_buses()),
            format!(
                "{:.2}",
                report.avg_based.avg_latency / report.designed.avg_latency
            ),
        ]);
    }
    println!("Fig 4(a): relative AVERAGE packet latency (normalised to full crossbar)\n");
    println!("{fig4a}");
    println!("Fig 4(b): relative MAXIMUM packet latency (normalised to full crossbar)\n");
    println!("{fig4b}");
    println!("Detail:\n\n{detail}");
}
