//! Developer diagnostic: dump the window-analysis structure for one suite.

use stbus_bench::{paper_suite, suite_params};
use stbus_core::Pipeline;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "Mat2".into());
    let app = paper_suite()
        .into_iter()
        .find(|a| a.name() == which)
        .expect("known app");
    let params = suite_params(app.name());
    let collected = Pipeline::collect(&app, &params);
    let analyzed = collected.analyze(&params);
    let pre = analyzed.pre_it();
    let stats = &pre.stats;
    println!(
        "{}: {} targets, {} windows of {} cycles, horizon {}",
        app.name(),
        stats.num_targets(),
        stats.num_windows(),
        stats.window_size(),
        stats.horizon()
    );
    println!(
        "peak window demand {} -> bandwidth LB {}",
        stats.peak_window_demand(),
        stats.peak_window_demand().div_ceil(stats.window_size())
    );
    println!(
        "conflicts: {} pairs, clique LB {}, coloring LB {}, pigeonhole {}",
        pre.conflicts.num_conflicts(),
        pre.conflicts.clique_lower_bound(),
        pre.conflicts.greedy_coloring_bound(),
        stats.num_targets().div_ceil(pre.maxtb)
    );
    println!("overall bus lower bound: {}", pre.bus_lower_bound());
    let n = stats.num_targets();
    println!(
        "\nmax-window pairwise overlap matrix (threshold limit {}):",
        (params.overlap_threshold * stats.window_size() as f64) as u64
    );
    for i in 0..n {
        let row: Vec<String> = (0..n)
            .map(|j| {
                if i == j {
                    "    .".into()
                } else {
                    format!("{:5}", stats.max_window_overlap(i, j))
                }
            })
            .collect();
        println!("T{i:<2} {}", row.join(" "));
    }
    println!("\nper-target total busy cycles:");
    for t in 0..n {
        println!("  T{t}: {}", stats.total_comm(t));
    }
}
