//! Arbitration-policy ablation on the designed crossbars.
//!
//! The STbus node's arbitration is programmable; the paper's latency
//! numbers assume fair arbitration. This experiment quantifies how the
//! three modelled policies (static priority, round-robin, LRU) move the
//! average/maximum packet latency on each suite's *designed* crossbar.
//!
//! Arbitration shapes the collected reference traffic (it is part of the
//! [`stbus_core::CollectionKey`]), so each policy is its own batch over
//! the suite.

use stbus_bench::{paper_suite, suite_params};
use stbus_core::pipeline::BaselineSet;
use stbus_core::Batch;
use stbus_report::Table;
use stbus_sim::Arbitration;

fn main() {
    let apps = paper_suite();
    let policies = [
        Arbitration::FixedPriority,
        Arbitration::RoundRobin,
        Arbitration::LeastRecentlyUsed,
    ];
    let mut columns: Vec<Vec<String>> = Vec::new();
    for policy in policies {
        // Only the designed crossbar's latency matters here — skip the
        // baseline simulations entirely.
        let results = Batch::per_app(&apps, |app| {
            suite_params(app.name()).with_arbitration(policy)
        })
        .with_baselines(BaselineSet::none())
        .run();
        columns.push(
            results
                .into_iter()
                .map(|point| {
                    let eval = point.result.expect("flow succeeds");
                    format!(
                        "{:.1}/{}",
                        eval.designed.avg_latency, eval.designed.max_latency
                    )
                })
                .collect(),
        );
    }

    let mut table = Table::new(vec![
        "Application",
        "fixed avg/max",
        "round-robin avg/max",
        "LRU avg/max",
    ]);
    for (a, app) in apps.iter().enumerate() {
        let mut cells = vec![app.name().to_string()];
        for column in &columns {
            cells.push(column[a].clone());
        }
        table.row(cells);
    }
    println!(
        "Arbitration ablation on the designed crossbars (avg / max packet\n\
         latency in cycles). Static priority lets high-index masters starve\n\
         under contention; the fair policies bound the maximum.\n"
    );
    println!("{table}");
}
