//! Arbitration-policy ablation on the designed crossbars.
//!
//! The STbus node's arbitration is programmable; the paper's latency
//! numbers assume fair arbitration. This experiment quantifies how the
//! three modelled policies (static priority, round-robin, LRU) move the
//! average/maximum packet latency on each suite's *designed* crossbar.

use stbus_bench::{paper_suite, suite_params};
use stbus_core::DesignFlow;
use stbus_report::Table;
use stbus_sim::Arbitration;

fn main() {
    let mut table = Table::new(vec![
        "Application",
        "fixed avg/max",
        "round-robin avg/max",
        "LRU avg/max",
    ]);
    for app in paper_suite() {
        let mut cells = vec![app.name().to_string()];
        for policy in [
            Arbitration::FixedPriority,
            Arbitration::RoundRobin,
            Arbitration::LeastRecentlyUsed,
        ] {
            let params = suite_params(app.name()).with_arbitration(policy);
            let report = DesignFlow::new(params).run(&app).expect("flow succeeds");
            cells.push(format!(
                "{:.1}/{}",
                report.designed.avg_latency, report.designed.max_latency
            ));
        }
        table.row(cells);
    }
    println!(
        "Arbitration ablation on the designed crossbars (avg / max packet\n\
         latency in cycles). Static priority lets high-index masters starve\n\
         under contention; the fair policies bound the maximum.\n"
    );
    println!("{table}");
}
