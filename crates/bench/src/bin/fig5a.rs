//! Fig. 5(a) — initiator→target crossbar size vs analysis window size, on
//! the 20-core synthetic benchmark (typical burst ≈ 1000 cycles).
//!
//! Paper reference: for windows much smaller than the burst the design
//! approaches a full crossbar; at 1–4× the burst size it drops to roughly
//! a quarter of the full size; very large windows approach the
//! average-flow design.
//!
//! The ten window sizes are ten analyses of *one* phase-1 artifact — the
//! staged pipeline collects the reference traffic once.

use stbus_bench::SEED;
use stbus_core::{DesignParams, Exact, Pipeline, Synthesizer};
use stbus_report::Series;
use stbus_traffic::workloads::synthetic;

fn main() {
    let app = synthetic::synthetic20(SEED);
    // Same x grid as the paper (window size in 100s of cycles).
    let window_sizes: [u64; 10] = [200, 300, 400, 750, 1_000, 2_000, 3_000, 4_000, 5_000, 7_500];

    let base = DesignParams::default();
    let collected = Pipeline::collect(&app, &base); // phase 1, once
    let exact = Exact::default();

    let mut series = Series::new("IT crossbar size vs window size (Fig 5a)");
    println!(
        "window size | IT crossbar size (full = {})",
        app.spec.num_targets()
    );
    println!("------------+------------------");
    for ws in window_sizes {
        let params = base.clone().with_window_size(ws);
        let analyzed = collected.analyze(&params);
        let outcome = exact
            .synthesize(analyzed.pre_it(), &params)
            .expect("synthesis ok");
        series.point(ws as f64, outcome.num_buses as f64);
        println!("{ws:>11} | {:>3}", outcome.num_buses);
    }
    println!();
    println!("{}", series.to_csv());
}
