//! Fig. 6 — initiator→target crossbar size vs overlap threshold, on the
//! 20-core synthetic benchmark.
//!
//! Paper reference: the size falls as the threshold rises, and thresholds
//! beyond 50 % of the window are meaningless (such pairs violate the
//! window bandwidth constraint outright). Aggressive designs sit around
//! 10 %, conservative ones at 30–40 %.

use stbus_bench::SEED;
use stbus_core::{phase1, phase3, DesignParams, Preprocessed};
use stbus_report::Series;
use stbus_traffic::workloads::synthetic;

fn main() {
    let app = synthetic::synthetic20(SEED);
    let thresholds = [0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50];

    let mut series = Series::new("IT crossbar size vs overlap threshold (Fig 6)");
    println!(
        "threshold % | IT crossbar size (full = {})",
        app.spec.num_targets()
    );
    println!("------------+------------------");
    for theta in thresholds {
        let params = DesignParams::default().with_overlap_threshold(theta);
        let collected = phase1::collect(&app, &params);
        let pre = Preprocessed::analyze(&collected.it_trace, &params);
        let outcome = phase3::synthesize(&pre, &params).expect("synthesis ok");
        series.point(theta * 100.0, outcome.num_buses as f64);
        println!("{:>10}% | {:>3}", (theta * 100.0) as u32, outcome.num_buses);
    }
    println!();
    println!("{}", series.to_csv());
    assert!(
        series.is_monotone_decreasing(),
        "size must not increase with the threshold"
    );
}
