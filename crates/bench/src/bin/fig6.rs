//! Fig. 6 — initiator→target crossbar size vs overlap threshold, on the
//! 20-core synthetic benchmark.
//!
//! Paper reference: the size falls as the threshold rises, and thresholds
//! beyond 50 % of the window are meaningless (such pairs violate the
//! window bandwidth constraint outright). Aggressive designs sit around
//! 10 %, conservative ones at 30–40 %.
//!
//! All seven thresholds re-analyse one phase-1 artifact.

use stbus_bench::SEED;
use stbus_core::{DesignParams, Exact, Pipeline, Synthesizer};
use stbus_report::Series;
use stbus_traffic::workloads::synthetic;

fn main() {
    let app = synthetic::synthetic20(SEED);
    let thresholds = [0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50];

    let base = DesignParams::default();
    let collected = Pipeline::collect(&app, &base); // phase 1, once
    let exact = Exact::default();

    let mut series = Series::new("IT crossbar size vs overlap threshold (Fig 6)");
    println!(
        "threshold % | IT crossbar size (full = {})",
        app.spec.num_targets()
    );
    println!("------------+------------------");
    for theta in thresholds {
        let params = base.clone().with_overlap_threshold(theta);
        let analyzed = collected.analyze(&params);
        let outcome = exact
            .synthesize(analyzed.pre_it(), &params)
            .expect("synthesis ok");
        series.point(theta * 100.0, outcome.num_buses as f64);
        println!("{:>10}% | {:>3}", (theta * 100.0) as u32, outcome.num_buses);
    }
    println!();
    println!("{}", series.to_csv());
    assert!(
        series.is_monotone_decreasing(),
        "size must not increase with the threshold"
    );
}
