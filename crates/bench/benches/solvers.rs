//! Solver ablation benchmarks: the specialised exact binding solver vs the
//! generic simplex/branch-and-bound MILP (the CPLEX stand-in), and the
//! effect of pre-processing conflicts on search time (paper §5/§6).

use criterion::{criterion_group, criterion_main, Criterion};
use stbus_bench::{paper_suite, suite_params};
use stbus_core::{phase1, Preprocessed};
use stbus_milp::{crossbar, BindingProblem, SolveLimits};

fn mat2_problem(buses: usize) -> (Preprocessed, BindingProblem) {
    let app = paper_suite()
        .into_iter()
        .find(|a| a.name() == "Mat2")
        .expect("Mat2 present");
    let params = suite_params(app.name());
    let collected = phase1::collect(&app, &params);
    let pre = Preprocessed::analyze(&collected.it_trace, &params);
    let problem = pre.binding_problem(buses);
    (pre, problem)
}

fn bench_feasibility_solvers(c: &mut Criterion) {
    let (_, problem) = mat2_problem(3);
    let mut group = c.benchmark_group("milp1_feasibility");
    group.sample_size(10);
    group.bench_function("specialised", |b| {
        b.iter(|| {
            problem
                .find_feasible(&SolveLimits::default())
                .expect("within limits")
        });
    });
    group.bench_function("generic_milp", |b| {
        b.iter(|| crossbar::solve_feasibility_milp(&problem));
    });
    group.finish();
}

fn bench_optimal_binding(c: &mut Criterion) {
    let (_, problem) = mat2_problem(3);
    let mut group = c.benchmark_group("milp2_binding");
    group.sample_size(10);
    group.bench_function("specialised", |b| {
        b.iter(|| {
            problem
                .optimize(&SolveLimits::default())
                .expect("within limits")
        });
    });
    group.finish();
}

fn bench_preprocessing_effect(c: &mut Criterion) {
    // Pre-processing conflicts prune the search (paper §5: "can also speed
    // up the process of finding the optimal crossbar configuration").
    let (pre, with_conflicts) = mat2_problem(3);
    let n = pre.stats.num_targets();
    let mut without_conflicts = BindingProblem::new(
        3,
        pre.stats.window_size(),
        (0..n).map(|t| pre.stats.demand_row(t).to_vec()).collect(),
    )
    .with_maxtb(pre.maxtb);
    without_conflicts.set_overlaps(|i, j| pre.stats.overlap_matrix().get(i, j));

    let mut group = c.benchmark_group("preprocessing_ablation");
    group.sample_size(10);
    group.bench_function("with_conflicts", |b| {
        b.iter(|| {
            with_conflicts
                .optimize(&SolveLimits::default())
                .expect("within limits")
        });
    });
    group.bench_function("without_conflicts", |b| {
        b.iter(|| {
            without_conflicts
                .optimize(&SolveLimits::default())
                .expect("within limits")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_feasibility_solvers,
    bench_optimal_binding,
    bench_preprocessing_effect
);
criterion_main!(benches);
