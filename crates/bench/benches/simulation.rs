//! Benchmarks of the cycle-accurate simulator on the three Table-1
//! architectures (shared bus, full crossbar, designed partial crossbar).

use criterion::{criterion_group, criterion_main, Criterion};
use stbus_bench::{paper_suite, run_suite_app, SEED};
use stbus_sim::{simulate, CrossbarConfig};
use stbus_traffic::workloads;

fn bench_architectures(c: &mut Criterion) {
    let app = paper_suite()
        .into_iter()
        .find(|a| a.name() == "Mat2")
        .expect("Mat2 present");
    let report = run_suite_app(&app);
    let designed = report.it_synthesis.config.clone();
    let num_targets = app.spec.num_targets();

    let mut group = c.benchmark_group("simulate_mat2");
    group.sample_size(20);
    group.bench_function("shared_bus", |b| {
        let cfg = CrossbarConfig::shared_bus(num_targets);
        b.iter(|| simulate(&app.trace, &cfg));
    });
    group.bench_function("full_crossbar", |b| {
        let cfg = CrossbarConfig::full(num_targets);
        b.iter(|| simulate(&app.trace, &cfg));
    });
    group.bench_function("designed_partial", |b| {
        b.iter(|| simulate(&app.trace, &designed));
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Simulator throughput across trace sizes (FFT is the densest suite).
    let mut group = c.benchmark_group("simulate_scaling");
    group.sample_size(10);
    for (name, app) in [
        ("qsort", workloads::qsort::qsort(SEED)),
        ("fft", workloads::fft::fft(SEED)),
    ] {
        let cfg = CrossbarConfig::full(app.spec.num_targets());
        group.throughput(criterion::Throughput::Elements(app.trace.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| simulate(&app.trace, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_architectures, bench_scaling);
criterion_main!(benches);
