//! Journal overhead bench: what does event-sourcing the gateway cost?
//!
//! Three measurements, snapshotted together as the `journal_overhead`
//! row of `BENCH_phase3.json`:
//!
//! * **Raw append throughput** per [`FsyncPolicy`] — a bare
//!   [`JournalWriter`] fed realistic-size records (a workload spec plus
//!   a ~1 KiB response body, the shape a `/synthesize` hit journals).
//!   The window closes at `close()`, so every policy pays its full
//!   durability bill inside the measurement: `always` syncs per record,
//!   `snapshot` every [`WriterOptions::snapshot_every`] records,
//!   `never` only buffers. The spread between the three IS the fsync
//!   cost; the `never` row is the in-memory encoding + channel floor.
//! * **Recovery latency** — [`recover`] over the journal the `always`
//!   run just wrote (snapshot load, suffix scan, CRC checks, torn-tail
//!   probe). This is the startup tax `--journal-dir` adds before the
//!   listener binds, *excluding* artifact-cache rebuild (that cost is
//!   request-shaped, not journal-shaped, and is covered by the
//!   `incremental_resynthesis` row).
//! * **End-to-end overhead** — the `gateway_throughput` closed loop run
//!   twice on the same config, journal off vs journal on at the default
//!   `always` policy, reported as both requests/sec figures and the
//!   relative slowdown. Journal appends happen on the dedicated writer
//!   thread, off the reply path, so the expected overhead is the
//!   record-construction cost plus channel send — small but honest
//!   numbers beat assumed-zero.

use stbus_gateway::{Gateway, GatewayConfig};
use stbus_journal::{
    recover, FsyncPolicy, JournalWriter, Record, RecordKind, RecordStatus, WriterOptions,
};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

/// Records per raw-append run. Large enough to cross many snapshot
/// boundaries (default cadence 64) and amortise spawn/close.
const APPENDS: usize = 2048;
/// Closed-loop clients for the end-to-end comparison (each waits for
/// its response before sending the next request).
const CLIENTS: usize = 2;
/// Per-client requests before each measured window.
const WARMUP_PER_CLIENT: usize = 2;
/// Per-client requests inside each measured window.
const REQUESTS_PER_CLIENT: usize = 24;
/// The identical request every client sends — same operating point as
/// the `gateway_throughput` row so the two are comparable.
const BODY: &str = r#"{"suite":"mat2","seed":42,"threshold":0.15}"#;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("stbus-journal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A record shaped like what a cache-warm `/synthesize` hit journals:
/// the verbatim request body as the spec and a ~1 KiB response body as
/// the outcome.
fn realistic_record(i: usize) -> Record {
    Record {
        seq: 0,
        kind: RecordKind::Synthesize,
        status: RecordStatus::Ok,
        tenant: String::new(),
        spec: format!("{{\"suite\":\"mat2\",\"seed\":{i},\"threshold\":0.15}}"),
        outcome: format!(
            "{{\"app\":\"Mat2\",\"it\":{{\"assignment\":[{}],\"num_buses\":4}},\
             \"ti\":{{\"assignment\":[{}],\"num_buses\":3}},\
             \"artifact\":\"{i:016x}\"}}",
            "0,1,2,3,0,1,2,3,".repeat(28),
            "0,1,2,0,1,2,0,1,".repeat(28),
        ),
    }
}

/// Appends [`APPENDS`] realistic records under the given policy and
/// returns records/sec, durability included (`close()` is inside the
/// window).
fn append_throughput(policy: FsyncPolicy, dir: &std::path::Path) -> f64 {
    let writer = JournalWriter::spawn(
        dir,
        WriterOptions {
            fsync: policy,
            ..WriterOptions::default()
        },
        None,
    )
    .expect("spawn journal writer");
    let start = Instant::now();
    for i in 0..APPENDS {
        writer.append(realistic_record(i));
    }
    writer.close();
    APPENDS as f64 / start.elapsed().as_secs_f64()
}

/// One persistent keep-alive connection (same framing contract as the
/// `gateway_throughput` bench: workload responses carry Content-Length).
struct KeepAliveClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> Self {
        Self {
            stream: TcpStream::connect(addr).expect("connect to gateway"),
            buf: Vec::new(),
        }
    }

    fn post(&mut self, path: &str, body: &str) -> String {
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream
            .write_all(request.as_bytes())
            .expect("write request");
        self.read_response()
    }

    fn read_response(&mut self) -> String {
        let header_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos + 4;
            }
            self.fill();
        };
        let headers = String::from_utf8_lossy(&self.buf[..header_end]).to_string();
        let content_length: usize = headers
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("workload responses carry Content-Length");
        let total = header_end + content_length;
        while self.buf.len() < total {
            self.fill();
        }
        let response = String::from_utf8_lossy(&self.buf[..total]).to_string();
        self.buf.drain(..total);
        response
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk).expect("read from gateway");
        assert!(n > 0, "gateway closed a kept-alive connection mid-response");
        self.buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Runs the closed loop against a gateway with the given journal dir
/// (None = journaling off) and returns requests/sec over the measured
/// window.
fn closed_loop_rps(journal_dir: Option<PathBuf>) -> f64 {
    let config = GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 64,
        cache_entries: 64,
        log_requests: false,
        journal_dir,
        ..GatewayConfig::default()
    };
    assert!(
        WARMUP_PER_CLIENT + REQUESTS_PER_CLIENT <= config.keep_alive_requests,
        "each client must fit its whole run on one kept-alive connection"
    );
    let gateway = Gateway::spawn(&config).expect("bind gateway");
    let addr = gateway.addr();

    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = KeepAliveClient::connect(addr);
                for _ in 0..WARMUP_PER_CLIENT {
                    let response = client.post("/synthesize", BODY);
                    assert!(response.starts_with("HTTP/1.1 200"), "warmup: {response}");
                }
                barrier.wait();
                for _ in 0..REQUESTS_PER_CLIENT {
                    let response = client.post("/synthesize", BODY);
                    assert!(response.starts_with("HTTP/1.1 200"), "measured: {response}");
                }
            })
        })
        .collect();

    barrier.wait();
    let window = Instant::now();
    for client in clients {
        client.join().expect("client thread");
    }
    let wall_s = window.elapsed().as_secs_f64();

    gateway.shutdown();
    gateway.join();
    (CLIENTS * REQUESTS_PER_CLIENT) as f64 / wall_s
}

fn main() {
    let host_parallelism = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Raw append throughput per fsync policy, durability included.
    let mut append_rows = Vec::new();
    let mut always_dir = None;
    for (name, policy) in [
        ("always", FsyncPolicy::Always),
        ("snapshot", FsyncPolicy::OnSnapshot),
        ("never", FsyncPolicy::Never),
    ] {
        let dir = scratch_dir(name);
        let records_per_sec = append_throughput(policy, &dir);
        println!("append[{name}]: {records_per_sec:.0} records/s");
        append_rows.push(format!("\"{name}\": {records_per_sec:.0}"));
        if name == "always" {
            always_dir = Some(dir);
        } else {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // Recovery latency over the `always` journal (snapshot + suffix).
    let always_dir = always_dir.expect("always run keeps its dir");
    let start = Instant::now();
    let state = recover(&always_dir).expect("recover");
    let recover_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        state.counters.served, APPENDS as u64,
        "recovery must account every appended record"
    );
    println!("recover: {recover_ms:.2} ms for {APPENDS} records");
    let _ = std::fs::remove_dir_all(&always_dir);

    // End-to-end: same closed loop, journal off vs on (default policy).
    let rps_off = closed_loop_rps(None);
    let journal_dir = scratch_dir("e2e");
    let rps_on = closed_loop_rps(Some(journal_dir.clone()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let overhead_pct = (rps_off / rps_on - 1.0) * 100.0;
    println!("gateway: {rps_off:.2} rps journal-off, {rps_on:.2} rps journal-on (always) — {overhead_pct:+.1}% overhead");

    let warning = stbus_bench::host_warning_json(host_parallelism, "requests_per_sec");
    let row = format!(
        "{{\"date\": \"{date}\", \"host_parallelism\": {host_parallelism}, \
         \"append\": {{\"records\": {APPENDS}, \"record_bytes\": {record_bytes}, \
         \"records_per_sec\": {{{appends}}}}}, \
         \"recover_ms\": {recover_ms:.2}, \
         \"gateway\": {{\"clients\": {CLIENTS}, \"requests\": {requests}, \
         \"requests_per_sec_off\": {rps_off:.2}, \"requests_per_sec_on\": {rps_on:.2}, \
         \"fsync\": \"always\", \"overhead_pct\": {overhead_pct:.1}}}, \
         \"warning\": {warning}}}",
        date = stbus_bench::today_utc(),
        record_bytes = realistic_record(0).spec.len() + realistic_record(0).outcome.len(),
        appends = append_rows.join(", "),
        requests = CLIENTS * REQUESTS_PER_CLIENT,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phase3.json");
    let snapshot = std::fs::read_to_string(path).unwrap_or_else(|_| String::from("{}\n"));
    let snapshot = stbus_bench::merge_top_level(&snapshot, "journal_overhead", &row);
    std::fs::write(path, &snapshot).expect("write BENCH_phase3.json");
    println!("wrote {path}");
    println!("journal_overhead: {row}");
}
