//! Kernel benchmarks for the window-based traffic analysis (the
//! measurement machinery behind Figs. 5–6 and every design run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stbus_bench::SEED;
use stbus_traffic::{workloads, ConflictMatrix, WindowStats};

fn bench_window_analysis(c: &mut Criterion) {
    let app = workloads::matrix::mat2(SEED);
    let mut group = c.benchmark_group("window_analysis");
    group.sample_size(20);
    for ws in [250u64, 1_000, 4_000] {
        group.bench_with_input(BenchmarkId::new("mat2", ws), &ws, |b, &ws| {
            b.iter(|| WindowStats::analyze(&app.trace, ws));
        });
    }
    let fft = workloads::fft::fft(SEED);
    group.bench_function("fft_ws1000", |b| {
        b.iter(|| WindowStats::analyze(&fft.trace, 1_000));
    });
    group.finish();
}

fn bench_conflict_matrix(c: &mut Criterion) {
    let app = workloads::matrix::mat2(SEED);
    let stats = WindowStats::analyze(&app.trace, 1_000);
    let mut group = c.benchmark_group("conflict_matrix");
    group.sample_size(20);
    for theta in [0.10f64, 0.25, 0.50] {
        group.bench_with_input(
            BenchmarkId::new("mat2", format!("{:.0}%", theta * 100.0)),
            &theta,
            |b, &theta| {
                b.iter(|| ConflictMatrix::from_stats_only(&stats, theta));
            },
        );
    }
    group.finish();
}

fn bench_burst_detection(c: &mut Criterion) {
    let app = workloads::synthetic::synthetic20(SEED);
    let mut group = c.benchmark_group("burst_detection");
    group.sample_size(20);
    group.bench_function("synthetic20", |b| {
        b.iter(|| stbus_traffic::BurstStats::detect(&app.trace, 60));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_window_analysis,
    bench_conflict_matrix,
    bench_burst_detection
);
criterion_main!(benches);
