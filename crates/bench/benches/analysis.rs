//! Kernel benchmarks for the window-based traffic analysis (the
//! measurement machinery behind Figs. 5–6 and every design run).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stbus_bench::SEED;
use stbus_traffic::{workloads, ConflictGraph, WindowStats};

fn bench_window_analysis(c: &mut Criterion) {
    let app = workloads::matrix::mat2(SEED);
    let mut group = c.benchmark_group("window_analysis");
    group.sample_size(20);
    for ws in [250u64, 1_000, 4_000] {
        group.bench_with_input(BenchmarkId::new("mat2", ws), &ws, |b, &ws| {
            b.iter(|| WindowStats::analyze(&app.trace, ws));
        });
    }
    let fft = workloads::fft::fft(SEED);
    group.bench_function("fft_ws1000", |b| {
        b.iter(|| WindowStats::analyze(&fft.trace, 1_000));
    });
    group.finish();
}

/// The pre-refactor conflict construction, inlined as the benchmark
/// baseline: an unconditional nested per-pair scan over every window's
/// overlap. (`ConflictMatrix::from_stats_only` now delegates to the graph,
/// so benching it would compare the new algorithm against itself.)
fn pre_refactor_conflict_count(stats: &WindowStats, threshold: f64) -> usize {
    let n = stats.num_targets();
    let limits: Vec<u64> = (0..stats.num_windows())
        .map(|m| (threshold * stats.window_len(m) as f64).floor() as u64)
        .collect();
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let over_threshold =
                (0..stats.num_windows()).any(|m| stats.window_overlap(i, j, m) > limits[m]);
            if over_threshold || stats.critical_streams_overlap(i, j) {
                count += 1;
            }
        }
    }
    count
}

fn bench_conflict_matrix(c: &mut Criterion) {
    let app = workloads::matrix::mat2(SEED);
    let stats = WindowStats::analyze(&app.trace, 1_000);
    let mut group = c.benchmark_group("conflict_matrix");
    group.sample_size(20);
    for theta in [0.10f64, 0.25, 0.50] {
        // Same answer, then same-run timing of new vs pre-refactor.
        assert_eq!(
            ConflictGraph::from_stats(&stats, theta).num_conflicts(),
            pre_refactor_conflict_count(&stats, theta)
        );
        group.bench_with_input(
            BenchmarkId::new("mat2_graph", format!("{:.0}%", theta * 100.0)),
            &theta,
            |b, &theta| {
                b.iter(|| ConflictGraph::from_stats(&stats, theta));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mat2_pre_refactor", format!("{:.0}%", theta * 100.0)),
            &theta,
            |b, &theta| {
                b.iter(|| black_box(pre_refactor_conflict_count(&stats, theta)));
            },
        );
    }
    group.finish();
}

fn bench_burst_detection(c: &mut Criterion) {
    let app = workloads::synthetic::synthetic20(SEED);
    let mut group = c.benchmark_group("burst_detection");
    group.sample_size(20);
    group.bench_function("synthetic20", |b| {
        b.iter(|| stbus_traffic::BurstStats::detect(&app.trace, 60));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_window_analysis,
    bench_conflict_matrix,
    bench_burst_detection
);
criterion_main!(benches);
