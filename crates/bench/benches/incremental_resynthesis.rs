//! Incremental re-synthesis benchmark: the delta request path (rebuild
//! the analysis from a stored artifact, patch it, warm-start phase 3)
//! against a from-scratch request, at the 48/96-target service scale.
//!
//! Two deltas per size, matching what the gateway's `"artifact"` +
//! `"delta"` requests serve: a **one-target edit** (replace one target's
//! request events) and a **one-θ-step** move of the overlap threshold.
//! Each case snapshots `{scratch_s, delta_s, speedup}` into the
//! `incremental_resynthesis` row of `BENCH_phase3.json` at the workspace
//! root, merged via the shared `stbus_bench` scanners so the phase-3
//! sweep and gateway-throughput rows survive (and vice versa over
//! there).
//!
//! **Operating point.** θ = 0.12 and window 2000 as in the phase-3
//! sweep, but `maxtb = 2` — the fine-grained fan-out cap where each bus
//! serves at most two targets. That cap puts the bus-count lower bound
//! at ⌈n/2⌉, *above* the bandwidth phase transition that defeats exact
//! search at these sizes under the sweep's `maxtb = 6` (see the
//! `proved_infeasible_through` rows): every binary-search probe is then
//! a witness-cheap feasible count and the exact engine stays in charge.
//! This is the regime where incremental re-synthesis pays end to end —
//! and the two sizes bracket it honestly:
//!
//! * at **96 targets** the pairing objective reaches 0, MILP-2 is
//!   exact-tractable, and the warm start collapses the whole solve to
//!   verify passes — the delta path is analysis-patch-bound (the ≥5×
//!   headline case);
//! * at **48 targets** (denser duty) the optimal pairing proof blows the
//!   node budget warm or cold, the portfolio falls back to the
//!   heuristic on both paths, and the delta win shrinks to the skipped
//!   phases 1–2 plus a cheaper doomed exact attempt — a few ×, an
//!   order of magnitude below the 96-target case. The row records that
//!   honestly rather than cherry-picking; no admissible warm start can
//!   skip an optimality proof the cold search also cannot finish.
//!
//! The solver is the budgeted [`Portfolio`] (the gateway's
//! never-fails strategy); both paths use the same budget, and the bench
//! asserts the warm path's verdicts (bus counts, probe logs, engine)
//! match the cold solve — the same contract `tests/incremental_equivalence.rs`
//! proves exhaustively at exact-tractable sizes.

use stbus_core::pipeline::{Collected, Pipeline};
use stbus_core::synthesizer::{Portfolio, Synthesizer};
use stbus_core::{DesignParams, SynthesisEngine, SynthesisOutcome};
use stbus_milp::{SolveLimits, WarmStart};
use stbus_traffic::workloads::synthetic;
use stbus_traffic::{InitiatorId, TargetEdit, TargetId, TraceEvent, WorkloadDelta};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 0xDA7E_2005;
const SIZES: [usize; 2] = [48, 96];
/// Node budget of the portfolio's exact attempt, both paths. Large
/// enough for the 96-target pairing proof, small enough that the
/// 48-target budget death stays in seconds.
const BUDGET: u64 = 500_000;
const THETA: f64 = 0.12;
const THETA_STEP: f64 = 0.16;
/// Wall-clock minimum over this many runs per measured path.
const ITERS: usize = 3;

fn operating_point() -> DesignParams {
    DesignParams::default()
        .with_overlap_threshold(THETA)
        .with_window_size(2_000)
        .with_maxtb(2)
}

/// The one-target edit: replace target 1's request events (its private
/// initiator re-recorded with a shorter burst pattern).
fn one_target_edit() -> WorkloadDelta {
    WorkloadDelta {
        edits: vec![TargetEdit {
            target: TargetId::new(1),
            events: vec![
                TraceEvent::new(InitiatorId::new(1), TargetId::new(1), 40, 25),
                TraceEvent::new(InitiatorId::new(1), TargetId::new(1), 90, 10),
            ],
        }],
        ..WorkloadDelta::default()
    }
}

fn theta_step() -> WorkloadDelta {
    WorkloadDelta {
        threshold: Some(THETA_STEP),
        ..WorkloadDelta::default()
    }
}

fn min_time<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters {
        let start = Instant::now();
        let v = std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("iters > 0"))
}

fn assert_same_verdicts(label: &str, warm: &SynthesisOutcome, cold: &SynthesisOutcome) {
    assert_eq!(warm.num_buses, cold.num_buses, "{label}: bus count");
    assert_eq!(warm.lower_bound, cold.lower_bound, "{label}: lower bound");
    assert_eq!(warm.probes, cold.probes, "{label}: probe sequence");
    assert_eq!(
        warm.max_bus_overlap, cold.max_bus_overlap,
        "{label}: optimised max overlap"
    );
    assert_eq!(warm.engine, cold.engine, "{label}: engine");
}

struct Case {
    targets: usize,
    kind: &'static str,
    scratch_s: f64,
    delta_s: f64,
    engine: &'static str,
}

fn main() {
    let host_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut params = operating_point();
    params.solve_limits = SolveLimits::nodes(BUDGET);
    let solver = Portfolio::default();
    let mut cases: Vec<Case> = Vec::new();

    for targets in SIZES {
        // The prior request whose response the artifact addresses: full
        // pipeline, cold. Its collected traffic, analysis and bindings
        // are what the gateway deposits under the content address.
        let app = synthetic::scaled_soc(targets, SEED);
        let collected = Pipeline::collect(&app, &params);
        let stored_traffic = collected.traffic().clone();
        let stored_analysis = collected.analysis_artifact(&params);
        let analyzed = collected.analyze(&params);
        let base_it = solver
            .synthesize(analyzed.pre_it(), &params)
            .expect("portfolio never fails");
        let base_ti = solver
            .synthesize(analyzed.pre_ti(), &params)
            .expect("portfolio never fails");

        for (kind, delta) in [
            ("one_target_edit", one_target_edit()),
            ("theta_step", theta_step()),
        ] {
            let new_params = match delta.threshold {
                Some(theta) => params.clone().with_overlap_threshold(theta),
                None => params.clone(),
            };

            // From-scratch: what a client without the artifact pays —
            // regenerate the workload, collect, analyze, cold solve.
            // (The edit is applied at the collected level so both paths
            // answer for the *same* patched workload.)
            let (scratch_s, cold) = min_time(ITERS, || {
                let app = synthetic::scaled_soc(targets, SEED);
                let collected = Pipeline::collect(&app, &new_params);
                let patched = collected.apply_delta(&delta).expect("valid delta");
                let a = patched.analyze(&new_params);
                let it = solver
                    .synthesize(a.pre_it(), &new_params)
                    .expect("portfolio never fails");
                let ti = solver
                    .synthesize(a.pre_ti(), &new_params)
                    .expect("portfolio never fails");
                (it, ti)
            });

            // Delta path: what the gateway executes on an artifact hit —
            // rebuild the Analyzed handle from the stored traffic and
            // window analysis, patch it, warm-start both directions.
            let warmed = |base: &SynthesisOutcome, p: &DesignParams| {
                let mut p = p.clone();
                p.solve_limits = p
                    .solve_limits
                    .clone()
                    .with_warm_start(WarmStart::new(base.binding.clone()));
                p
            };
            let (delta_s, warm) = min_time(ITERS, || {
                let rebuilt = Collected::from_cached(&app, &params, stored_traffic.clone());
                let a = rebuilt.analyze_with(&stored_analysis, &params);
                let re = a.reanalyze(&delta).expect("valid delta");
                let it = solver
                    .synthesize(re.pre_it(), &warmed(&base_it, re.params()))
                    .expect("portfolio never fails");
                let ti = solver
                    .synthesize(re.pre_ti(), &warmed(&base_ti, re.params()))
                    .expect("portfolio never fails");
                (it, ti)
            });

            let (cold_it, cold_ti) = &cold;
            let (warm_it, warm_ti) = &warm;
            assert_same_verdicts(&format!("{targets}/{kind}/it"), warm_it, cold_it);
            assert_same_verdicts(&format!("{targets}/{kind}/ti"), warm_ti, cold_ti);
            let engine = match cold_it.engine {
                SynthesisEngine::Exact => "exact",
                SynthesisEngine::Heuristic => "heuristic",
            };
            println!(
                "incremental_resynthesis {targets}/{kind}: scratch={scratch_s:.3}s \
                 delta={delta_s:.3}s speedup={:.1}x engine={engine} buses={}/{}",
                scratch_s / delta_s,
                cold_it.num_buses,
                cold_ti.num_buses
            );
            cases.push(Case {
                targets,
                kind,
                scratch_s,
                delta_s,
                engine,
            });
        }
    }

    // The headline contract of the incremental path: at the 96-target
    // exact-tractable point, a one-target edit re-synthesizes ≥5×
    // faster than from scratch. Nightly perf runs fail loudly if the
    // delta path regresses below that.
    let headline = cases
        .iter()
        .find(|c| c.targets == 96 && c.kind == "one_target_edit")
        .expect("96-target edit case ran");
    assert!(
        headline.scratch_s / headline.delta_s >= 5.0,
        "96-target one-target-edit speedup fell below 5x: scratch={:.3}s delta={:.3}s",
        headline.scratch_s,
        headline.delta_s
    );

    let mut cases_json = String::new();
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            cases_json.push_str(",\n");
        }
        write!(
            cases_json,
            "    {{\"targets\": {}, \"delta\": \"{}\", \"engine\": \"{}\", \
             \"scratch_s\": {:.6}, \"delta_s\": {:.6}, \"speedup\": {:.2}}}",
            c.targets,
            c.kind,
            c.engine,
            c.scratch_s,
            c.delta_s,
            c.scratch_s / c.delta_s
        )
        .expect("write to string");
    }
    let row = format!(
        "{{\"date\": \"{date}\", \"host_parallelism\": {host_parallelism}, \
         \"workload\": {{\"family\": \"synthetic_scaled_soc\", \"seed\": {SEED}, \
         \"overlap_threshold\": {THETA}, \"theta_step\": {THETA_STEP}, \
         \"window_size\": 2000, \"maxtb\": 2, \"solver\": \"portfolio\", \
         \"node_budget\": {BUDGET}}}, \"iters\": {ITERS}, \"cases\": [\n{cases_json}\n  ]}}",
        date = stbus_bench::today_utc(),
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phase3.json");
    let snapshot = std::fs::read_to_string(path).unwrap_or_else(|_| String::from("{}\n"));
    let snapshot = stbus_bench::merge_top_level(&snapshot, "incremental_resynthesis", &row);
    std::fs::write(path, &snapshot).expect("write BENCH_phase3.json");
    println!("wrote {path}");
    println!("incremental_resynthesis: {row}");
}
