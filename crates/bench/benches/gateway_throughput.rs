//! Closed-loop gateway throughput bench: an in-process [`Gateway`] under
//! a small fleet of synchronous HTTP clients, all POSTing the same
//! workload-mode `/synthesize` request over **persistent keep-alive
//! connections** (one per client for the whole run, well under the
//! gateway's per-connection request cap) — per-request latency is
//! request-written to response-read, with no connect/teardown inside
//! the measured exchange.
//!
//! The point being measured is the **service layer**, not the solvers:
//! with identical requests the collect/analysis artifact caches converge
//! to the hit path after the first flight, so the steady state is
//! per-request HTTP framing + admission + scheduling + a cache-warm
//! phase-3 synthesis. The run snapshots a `gateway_throughput` row into
//! `BENCH_phase3.json` at the workspace root (requests/sec, p50/p99
//! latency, end-of-run cache hit rate), merged next to the phase-3
//! sweep's rows via the shared `stbus_bench` snapshot helpers so neither
//! bench clobbers the other.
//!
//! On a 1-core host the row carries the shared machine-readable
//! `single_core_host` warning (same shape as the `executor_saturation`
//! row): with clients, connection threads and workers timesliced onto
//! one core, `requests_per_sec` measures scheduling overhead under
//! contention, not service parallelism.

use stbus_gateway::{Gateway, GatewayConfig};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

/// Concurrent closed-loop clients (each waits for its response before
/// sending the next request).
const CLIENTS: usize = 4;
/// Per-client requests before the measured window (fills the caches and
/// faults in the lazily spawned threads).
const WARMUP_PER_CLIENT: usize = 4;
/// Per-client requests inside the measured window.
const REQUESTS_PER_CLIENT: usize = 64;
/// The identical request every client sends: Mat2 at the paper's
/// aggressive threshold — the suite operating point of `stbus suite`.
const BODY: &str = r#"{"suite":"mat2","seed":42,"threshold":0.15}"#;

/// One persistent keep-alive connection. Each `post` is a single
/// request/response exchange on it; the response is framed by its
/// `Content-Length` (workload responses are never chunked), leaving
/// the connection ready for the next request.
struct KeepAliveClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> Self {
        Self {
            stream: TcpStream::connect(addr).expect("connect to gateway"),
            buf: Vec::new(),
        }
    }

    /// Returns the full response text (status line through body) and
    /// the wall-clock seconds from first request byte written to last
    /// response byte read.
    fn post(&mut self, path: &str, body: &str) -> (String, f64) {
        let start = Instant::now();
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream
            .write_all(request.as_bytes())
            .expect("write request");
        let response = self.read_response();
        (response, start.elapsed().as_secs_f64())
    }

    fn read_response(&mut self) -> String {
        let header_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos + 4;
            }
            self.fill("response headers");
        };
        let headers = String::from_utf8_lossy(&self.buf[..header_end]).to_string();
        let content_length: usize = headers
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("workload responses carry Content-Length");
        let total = header_end + content_length;
        while self.buf.len() < total {
            self.fill("response body");
        }
        let response = String::from_utf8_lossy(&self.buf[..total]).to_string();
        self.buf.drain(..total);
        response
    }

    fn fill(&mut self, while_reading: &str) {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk).expect("read from gateway");
        assert!(
            n > 0,
            "gateway closed a kept-alive connection mid-{while_reading} \
             (requests per connection stayed under the keep-alive cap)"
        );
        self.buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to gateway");
    let request = format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// Body of a non-chunked response (everything after the header block).
fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map_or(response, |(_, body)| body)
}

/// Pulls `field` out of the named top-level section of the `/stats`
/// body, reusing the shared snapshot scanner (each section is itself a
/// small JSON object, so its fields sit at depth 1).
fn stat(stats_body: &str, section: &str, field: &str) -> u64 {
    let section = stbus_bench::extract_top_level(stats_body, section)
        .unwrap_or_else(|| panic!("/stats has a `{section}` section"));
    stbus_bench::extract_top_level(&section, field)
        .and_then(|raw| raw.parse().ok())
        .unwrap_or_else(|| panic!("`{section}.{field}` is a counter"))
}

fn percentile(sorted: &[f64], p: usize) -> f64 {
    assert!(!sorted.is_empty());
    sorted[(sorted.len() - 1) * p / 100]
}

fn main() {
    let host_parallelism = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let config = GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 64,
        cache_entries: 64,
        log_requests: false,
        ..GatewayConfig::default()
    };
    assert!(
        WARMUP_PER_CLIENT + REQUESTS_PER_CLIENT <= config.keep_alive_requests,
        "each client must fit its whole run on one kept-alive connection"
    );
    let gateway = Gateway::spawn(&config).expect("bind gateway");
    let addr = gateway.addr();

    // Warmup outside the window: first flight computes the artifacts
    // (single-flight collapses the rest onto it), later flights pin the
    // steady-state hit path.
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = KeepAliveClient::connect(addr);
                for _ in 0..WARMUP_PER_CLIENT {
                    let (response, _) = client.post("/synthesize", BODY);
                    assert!(response.starts_with("HTTP/1.1 200"), "warmup: {response}");
                }
                barrier.wait();
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let (response, seconds) = client.post("/synthesize", BODY);
                    assert!(response.starts_with("HTTP/1.1 200"), "measured: {response}");
                    latencies.push(seconds);
                }
                latencies
            })
        })
        .collect();

    barrier.wait();
    let window = Instant::now();
    let mut latencies: Vec<f64> = clients
        .into_iter()
        .flat_map(|client| client.join().expect("client thread"))
        .collect();
    let wall_s = window.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);

    let requests = CLIENTS * REQUESTS_PER_CLIENT;
    let requests_per_sec = requests as f64 / wall_s;
    let p50_ms = percentile(&latencies, 50) * 1e3;
    let p99_ms = percentile(&latencies, 99) * 1e3;

    // End-of-run cache effectiveness across both artifact caches. The
    // exactly-one classification invariant (hits + misses + inflight
    // waits == lookups) makes this a true rate, not an estimate.
    let stats = get(addr, "/stats");
    assert!(stats.starts_with("HTTP/1.1 200"), "stats: {stats}");
    let stats_body = body_of(&stats).to_string();
    let mut hits = 0;
    let mut lookups = 0;
    for cache in ["collect_cache", "analysis_cache"] {
        let cache_hits = stat(&stats_body, cache, "hits");
        hits += cache_hits;
        lookups += cache_hits
            + stat(&stats_body, cache, "misses")
            + stat(&stats_body, cache, "inflight_waits");
    }
    assert!(lookups > 0, "workload requests must touch the caches");
    let cache_hit_rate = hits as f64 / lookups as f64;
    let served = stat(&stats_body, "requests", "served");
    assert_eq!(
        served as usize,
        requests + CLIENTS * WARMUP_PER_CLIENT,
        "every request must be served exactly once"
    );

    gateway.shutdown();
    gateway.join();

    let warning = stbus_bench::host_warning_json(host_parallelism, "requests_per_sec");
    if host_parallelism == 1 {
        eprintln!(
            "warning: gateway-throughput row measured on a 1-core host — \
             requests/sec reflects timesliced scheduling, not service parallelism"
        );
    }
    let row = format!(
        "{{\"date\": \"{date}\", \"host_parallelism\": {host_parallelism}, \
         \"workers\": {workers}, \"clients\": {CLIENTS}, \
         \"connections\": \"keep-alive\", \
         \"warmup_requests\": {warmup}, \"requests\": {requests}, \
         \"request\": {{\"route\": \"/synthesize\", \"suite\": \"mat2\", \"seed\": 42, \
         \"overlap_threshold\": 0.15}}, \
         \"wall_s\": {wall_s:.6}, \"requests_per_sec\": {requests_per_sec:.2}, \
         \"latency_ms\": {{\"p50\": {p50_ms:.3}, \"p99\": {p99_ms:.3}}}, \
         \"cache_hit_rate\": {cache_hit_rate:.4}, \"warning\": {warning}}}",
        date = stbus_bench::today_utc(),
        workers = config.workers,
        warmup = CLIENTS * WARMUP_PER_CLIENT,
    );

    // Merge the row into the shared trajectory snapshot, preserving the
    // phase-3 sweep's rows (phase3.rs preserves ours symmetrically).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phase3.json");
    let snapshot = std::fs::read_to_string(path).unwrap_or_else(|_| String::from("{}\n"));
    let snapshot = stbus_bench::merge_top_level(&snapshot, "gateway_throughput", &row);
    std::fs::write(path, &snapshot).expect("write BENCH_phase3.json");
    println!("wrote {path}");
    println!("gateway_throughput: {row}");
}
