//! Benchmarks of the synthesis phase (MILP-1 binary search + MILP-2
//! optimal binding) for every suite — the computation behind Tables 1–2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stbus_bench::{paper_suite, suite_params};
use stbus_core::{phase1, phase3, Preprocessed};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for app in paper_suite() {
        let params = suite_params(app.name());
        let collected = phase1::collect(&app, &params);
        let pre = Preprocessed::analyze(&collected.it_trace, &params);
        group.bench_with_input(
            BenchmarkId::new("it_direction", app.name()),
            &pre,
            |b, pre| {
                b.iter(|| phase3::synthesize(pre, &params).expect("ok"));
            },
        );
    }
    group.finish();
}

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    for app in paper_suite() {
        let params = suite_params(app.name());
        let collected = phase1::collect(&app, &params);
        group.bench_with_input(
            BenchmarkId::new("it_direction", app.name()),
            &collected.it_trace,
            |b, trace| {
                b.iter(|| Preprocessed::analyze(trace, &params));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis, bench_preprocess);
criterion_main!(benches);
