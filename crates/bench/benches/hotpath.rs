//! Hot-path microbench: the three layers the profile-guided pass
//! rewrote, measured where they live.
//!
//! * **DFS node rate** — the 32-target exact probe sequence replayed
//!   through [`BindingProblem::find_feasible_counted`], which reports
//!   the exact number of DFS nodes expanded. Node counts are
//!   bit-identical across builds (the arena refactor changes *where
//!   state lives*, never *which branches are explored* — the
//!   equivalence suites prove that), so nodes-per-second is a pure
//!   per-node-cost metric: any ratio between two snapshots is a real
//!   inner-loop speedup, immune to search-order luck.
//! * **DFS allocation counts** — a counting `#[global_allocator]`
//!   wrapped around the same replay. The arena pre-sizes every
//!   per-depth frame at problem construction, so the steady-state
//!   search should allocate (almost) nothing per node; the row records
//!   allocations-per-kilonode so a regression back to per-node `Vec`
//!   churn is visible as a number, not a feeling.
//! * **Word-parallel kernel throughput** — `any_and` / `and_assign`
//!   dispatch tier vs the scalar oracle on L2-resident operands, with
//!   the active tier (`chunked` or `avx2`) recorded so a throughput
//!   row is attributable to the build that produced it.
//!
//! The run merges a `hotpath` row into `BENCH_phase3.json` next to the
//! size-sweep rows (each bench carries the others' rows forward). When
//! a previous row exists, `HOTPATH_GUARD=1` turns the run into a
//! regression gate: it fails if the fresh node rate drops below
//! 1/1.3 of the committed one (the nightly trajectory job sets this).
//!
//! Methodology notes live in `crates/bench/BENCHMARKS.md`.

use stbus_core::synthesizer::{Exact, Synthesizer};
use stbus_core::{DesignParams, Preprocessed};
use stbus_traffic::kernels;
use stbus_traffic::workloads::synthetic;
use std::alloc::{GlobalAlloc, Layout, System};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting allocator: every `alloc`/`alloc_zeroed`/`realloc` in the
/// process bumps the counters (the default `GlobalAlloc` provided
/// methods all route through `alloc`). The bench reads deltas around
/// the measured region; nothing else allocates on this thread there.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SEED: u64 = 0xDA7E_2005;
/// The size-sweep's exact frontier point: the largest size where the
/// pruned exact pipeline completes, i.e. where per-node cost dominates
/// end-to-end latency.
const TARGETS: usize = 32;
/// Words per kernel operand: 16 Ki × u64 = 128 KiB, L2-resident so the
/// measurement is ALU/port throughput, not DRAM bandwidth.
const KERNEL_WORDS: usize = 1 << 14;
/// Kernel repetitions per timed sample.
const KERNEL_ITERS: usize = 512;
/// A fresh node rate below `committed / GUARD_RATIO` fails the run when
/// `HOTPATH_GUARD` is set.
const GUARD_RATIO: f64 = 1.3;

/// The shared conflict-dense operating point of the phase-3 sweep.
fn sweep_params() -> DesignParams {
    DesignParams::default()
        .with_overlap_threshold(0.12)
        .with_window_size(2_000)
        .with_maxtb(6)
}

/// Times `f` over `iters` runs and returns the minimum wall-clock seconds.
fn min_time<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let host_parallelism = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    let params = sweep_params();
    let app = synthetic::scaled_soc(TARGETS, SEED);
    assert_eq!(app.spec.num_targets(), TARGETS);
    let pre = Preprocessed::analyze(&app.trace, &params);

    // --- DFS node rate: replay the exact probe log, counted. ---
    // One reference synthesis pins the probe sequence and its verdicts;
    // the replay must reproduce both (the "same verdicts, same probe
    // log" contract — a node-rate number from a diverged search would
    // be meaningless).
    let reference = Exact::default()
        .synthesize(&pre, &params)
        .expect("32 targets is exact-tractable");
    assert!(!reference.probes.is_empty(), "binary search probes");
    let probes: Vec<_> = reference
        .probes
        .iter()
        .map(|&(buses, feasible)| (pre.binding_problem(buses), feasible))
        .collect();

    let replay = || {
        let mut nodes = 0u64;
        for (problem, feasible) in &probes {
            let (found, n) = problem
                .find_feasible_counted(&params.solve_limits)
                .expect("within the node budget");
            assert_eq!(
                found.is_some(),
                *feasible,
                "replay verdict diverged from the reference probe log"
            );
            nodes += n;
        }
        nodes
    };

    let total_nodes = replay();
    assert!(total_nodes > 0, "a counted search expands nodes");
    let replay_s = min_time(5, replay);
    let node_rate = total_nodes as f64 / replay_s;

    // End-to-end exact pipeline at the same point (probes + MILP-2),
    // comparable to the size-sweep's `exact_bitset` seconds.
    let exact_s = min_time(3, || {
        Exact::default()
            .synthesize(&pre, &params)
            .expect("32 targets is exact-tractable")
    });

    // --- DFS allocation counts around one replay. ---
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let bytes_before = ALLOC_BYTES.load(Ordering::Relaxed);
    let counted_nodes = replay();
    let replay_allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let replay_alloc_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes_before;
    assert_eq!(counted_nodes, total_nodes, "node counts are deterministic");
    let allocs_per_kilonode = replay_allocs as f64 * 1e3 / total_nodes as f64;

    // --- Kernel throughput: dispatch tier vs scalar oracle. ---
    // Disjoint bit patterns so `any_and` never early-exits: every
    // sample scans the full operand and the rate is words/second.
    let a = vec![0xAAAA_AAAA_AAAA_AAAAu64; KERNEL_WORDS];
    let b = vec![0x5555_5555_5555_5555u64; KERNEL_WORDS];
    let any_and_s = min_time(5, || {
        for _ in 0..KERNEL_ITERS {
            assert!(!kernels::any_and(
                std::hint::black_box(&a),
                std::hint::black_box(&b)
            ));
        }
    });
    let any_and_scalar_s = min_time(5, || {
        for _ in 0..KERNEL_ITERS {
            assert!(!kernels::any_and_scalar(
                std::hint::black_box(&a),
                std::hint::black_box(&b)
            ));
        }
    });
    // `dst &= MAX` is idempotent, so repeated samples see identical data.
    let mut dst = a.clone();
    let ones = vec![u64::MAX; KERNEL_WORDS];
    let and_assign_s = min_time(5, || {
        for _ in 0..KERNEL_ITERS {
            kernels::and_assign(std::hint::black_box(&mut dst), std::hint::black_box(&ones));
        }
    });
    let and_assign_scalar_s = min_time(5, || {
        for _ in 0..KERNEL_ITERS {
            kernels::and_assign_scalar(std::hint::black_box(&mut dst), std::hint::black_box(&ones));
        }
    });
    assert_eq!(dst, a, "AND with all-ones must be the identity");
    let gwords = (KERNEL_WORDS * KERNEL_ITERS) as f64 / 1e9;

    // --- Snapshot row, merged next to the size-sweep's rows. ---
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phase3.json");
    let old = std::fs::read_to_string(path).unwrap_or_else(|_| String::from("{}\n"));

    // Speedup evidence and regression guard against the committed row.
    let committed_rate: Option<f64> = stbus_bench::extract_top_level(&old, "hotpath")
        .and_then(|row| stbus_bench::extract_top_level(&row, "exact_32"))
        .and_then(|exact| stbus_bench::extract_top_level(&exact, "node_rate_per_s"))
        .and_then(|raw| raw.parse().ok());
    let committed_exact_s: Option<f64> =
        stbus_bench::extract_top_level(&old, "sizes").and_then(|sizes| {
            let at32 = sizes.split("\"targets\": 32").nth(1)?;
            let (_, after) = at32.split_once("\"exact_bitset\": ")?;
            let end = after.find([',', '}'])?;
            after[..end].trim().parse().ok()
        });
    if let Some(committed) = committed_rate {
        let ratio = node_rate / committed;
        println!("node rate vs committed hotpath row: {ratio:.2}x");
        if std::env::var_os("HOTPATH_GUARD").is_some() {
            assert!(
                node_rate * GUARD_RATIO >= committed,
                "node-rate regression: {node_rate:.0}/s is more than \
                 {GUARD_RATIO}x below the committed {committed:.0}/s"
            );
        }
    } else if std::env::var_os("HOTPATH_GUARD").is_some() {
        println!("HOTPATH_GUARD set but no committed hotpath row to guard against");
    }
    let speedup_vs_sweep =
        committed_exact_s.map_or_else(|| String::from("null"), |s| format!("{:.2}", s / exact_s));

    let row = format!(
        "{{\"date\": \"{date}\", \"host_parallelism\": {host_parallelism}, \
         \"kernel_tier\": \"{tier}\", \
         \"exact_32\": {{\"targets\": {TARGETS}, \"probes\": {probes_n}, \
         \"nodes\": {total_nodes}, \"replay_s\": {replay_s:.6}, \
         \"node_rate_per_s\": {node_rate:.0}, \
         \"exact_synthesize_s\": {exact_s:.6}, \
         \"speedup_vs_committed_sweep\": {speedup_vs_sweep}}}, \
         \"dfs_allocations\": {{\"allocs\": {replay_allocs}, \
         \"bytes\": {replay_alloc_bytes}, \
         \"allocs_per_kilonode\": {allocs_per_kilonode:.3}}}, \
         \"kernels\": {{\"words\": {KERNEL_WORDS}, \"iters\": {KERNEL_ITERS}, \
         \"any_and\": {{\"dispatch_gwords_s\": {aa_rate:.3}, \
         \"scalar_gwords_s\": {aa_scalar_rate:.3}, \"speedup\": {aa_speedup:.2}}}, \
         \"and_assign\": {{\"dispatch_gwords_s\": {as_rate:.3}, \
         \"scalar_gwords_s\": {as_scalar_rate:.3}, \"speedup\": {as_speedup:.2}}}}}}}",
        date = stbus_bench::today_utc(),
        tier = kernels::active_tier(),
        probes_n = probes.len(),
        aa_rate = gwords / any_and_s,
        aa_scalar_rate = gwords / any_and_scalar_s,
        aa_speedup = any_and_scalar_s / any_and_s,
        as_rate = gwords / and_assign_s,
        as_scalar_rate = gwords / and_assign_scalar_s,
        as_speedup = and_assign_scalar_s / and_assign_s,
    );

    let snapshot = stbus_bench::merge_top_level(&old, "hotpath", &row);
    std::fs::write(path, &snapshot).expect("write BENCH_phase3.json");
    println!("wrote {path}");
    println!("hotpath: {row}");
}
