//! Phase-3 **size-sweep** benchmark: 12/24/32/48/96-target synthetic SoCs
//! — the scaling curve of the solver stack, not a single point.
//!
//! Five stories in one run, all snapshotted to `BENCH_phase3.json` at the
//! workspace root (and appended to the file named by the `BENCH_HISTORY`
//! environment variable, when set — the CI perf-trajectory job). The
//! snapshot file is shared with `gateway_throughput.rs`, whose row this
//! bench carries forward when rewriting:
//!
//! * **Size sweep** — exact, heuristic and portfolio synthesis at every
//!   size. The exact engine runs with the default per-node pruning
//!   ([`stbus_milp::PruningLevel::Standard`]); at each exact-tractable
//!   size the *unpruned* search is also attempted, so the sweep records
//!   where pruning moves the exact cliff (at 32 targets the pruned
//!   pipeline completes in seconds while the unpruned search dies on the
//!   node budget — that flip is the data). The dense-matrix baseline of
//!   PR 2–4 is retired; its final measured speedups are snapshotted in
//!   `crates/bench/BENCHMARKS.md` and the generic MILP remains the sole
//!   independent reference.
//! * **Infeasibility frontier** — at the sizes beyond full exact
//!   tractability (48/96), the pruned exact search proves bus counts
//!   infeasible from the lower bound upward under a small per-probe node
//!   budget; the largest proven count is recorded. This is the honest
//!   residue of the cliff: at 48 targets the proofs reach 13 buses in
//!   microseconds and stop at the 14/15 feasibility phase transition,
//!   where witnesses exist (the repair-enabled heuristic finds a 15-bus
//!   binding) but exact proofs are out of reach for bitset and MILP
//!   search alike.
//! * **θ-sweep** — a nine-point overlap-threshold sweep at the largest
//!   size, per-point rebuild vs the sweep-resident [`OverlapProfile`]
//!   path (one analysis, O(pairs) re-threshold per θ).
//! * **Probe scheduler** — the speculative parallel binary search at 24
//!   targets, plain and raced, against the sequential search, with the
//!   raced run's heuristic pre-pass attributed separately (on a 1-core
//!   host `parallel_s` can only tie `sequential_s` plus queue overhead;
//!   without the pre-pass attribution that read as a scheduler
//!   regression in the PR-3 snapshot).
//! * **Learned search at the phase transition** — the CDCL-style nogood
//!   learner ([`stbus_milp::binding::learned`], `--search learned`) at
//!   the 48-target 14/15-bus transition: the 15-bus witness it certifies
//!   exactly (the standard engine burns the whole probe budget there
//!   with no answer), the infeasibility frontier it reaches, and the
//!   honest outcome at the still-open 14-bus point. Guarded like the
//!   pruning cliff: the run fails if the witness stops certifying or the
//!   frontier regresses.
//! * **Executor saturation** — a batch of **2** design points × 48-target
//!   raced probes on the shared executor, recording the peak number of
//!   simultaneously busy workers plus the time-weighted busy-worker
//!   integral (worker·seconds), whose ratio to wall time is the mean
//!   occupancy — meaningful even on 1-core hosts where the peak
//!   saturates the moment two tasks overlap. Under the retired stacked pools the
//!   batch's parallelism was pinned to the batch width (2); with one
//!   work-stealing executor the inner probe and repair tasks spill onto
//!   the leftover workers. On a 1-core host the row records scheduling
//!   concurrency, not parallel speedup, and the snapshot carries an
//!   explicit warning.
//!
//! Methodology notes live in `crates/bench/BENCHMARKS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use stbus_core::pipeline::BaselineSet;
use stbus_core::synthesizer::{Exact, Heuristic, Portfolio, Synthesizer};
use stbus_core::{
    exec, synthesize, Batch, DesignParams, Preprocessed, ProbeScheduler, SynthesisEngine,
};
use stbus_milp::{HeuristicOptions, PruningLevel, SearchLevel, SolveLimits};
use stbus_traffic::workloads::synthetic;
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

const SEED: u64 = 0xDA7E_2005;
const SIZES: [usize; 5] = [12, 24, 32, 48, 96];
/// Sizes where the pruned exact pipeline (probes + MILP-2) completes
/// within the default node budget. 32 is new in PR 4: the per-node
/// lower bounds moved the cliff past the ROADMAP's ~32-target wall.
const EXACT_TRACTABLE: [usize; 3] = [12, 24, 32];
/// Node budget of the portfolio's exact attempt and the frontier scan at
/// the intractable sizes. Pruned nodes buy far more search than PR-3's
/// unpruned nodes (the sub-transition infeasibility proofs that used to
/// blow 2M nodes now finish in hundreds), so the budget drops to keep
/// the fallback latency in seconds.
const PROBE_BUDGET: SolveLimits = SolveLimits::nodes(250_000);
const THETA_SWEEP: [f64; 9] = [0.08, 0.10, 0.12, 0.16, 0.20, 0.25, 0.30, 0.35, 0.40];

/// The shared conflict-dense operating point (24-target values identical
/// to the PR-2 snapshot, so the trajectory stays comparable).
fn sweep_params() -> DesignParams {
    DesignParams::default()
        .with_overlap_threshold(0.12)
        .with_window_size(2_000)
        .with_maxtb(6)
}

fn pre_of(targets: usize, params: &DesignParams) -> Preprocessed {
    let app = synthetic::scaled_soc(targets, SEED);
    assert_eq!(app.spec.num_targets(), targets);
    Preprocessed::analyze(&app.trace, params)
}

fn solve_bitset(pre: &Preprocessed, params: &DesignParams) -> (usize, u64) {
    let out = Exact::default()
        .synthesize(pre, params)
        .expect("within limits");
    (out.num_buses, out.max_bus_overlap)
}

/// Times `f` over `iters` runs and returns the minimum wall-clock seconds.
fn min_time<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct SizePoint {
    targets: usize,
    conflict_pairs: usize,
    lower_bound: usize,
    num_buses: usize,
    engine: &'static str,
    seconds: Vec<(&'static str, f64)>,
    /// `Some(s)` when the unpruned exact pipeline completed in `s`
    /// seconds, `None` when it blew the node budget (recorded as
    /// `"budget"` in the snapshot) — the pruning cliff-flip evidence.
    unpruned_exact: Option<Option<f64>>,
    /// Largest bus count proven infeasible by the pruned exact search
    /// under [`PROBE_BUDGET`], scanning up from the lower bound
    /// (intractable sizes only).
    frontier: Option<usize>,
}

/// Scans bus counts upward from the lower bound, proving infeasibility
/// with the pruned exact search under a small budget; returns the last
/// proven count (or `lower_bound - 1` when even the first is unproven).
fn infeasibility_frontier(pre: &Preprocessed) -> usize {
    let n = pre.stats.num_targets();
    let lb = pre.bus_lower_bound();
    let mut proven = lb - 1;
    for buses in lb..=n {
        match pre.binding_problem(buses).find_feasible(&PROBE_BUDGET) {
            Ok(None) => proven = buses,
            _ => break,
        }
    }
    proven
}

fn bench_phase3(c: &mut Criterion) {
    let params = sweep_params();
    let jobs = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    let mut size_points: Vec<SizePoint> = Vec::new();
    let mut group = c.benchmark_group("phase3_size_sweep");
    group.sample_size(5);

    for targets in SIZES {
        let pre = pre_of(targets, &params);
        let exact_ok = EXACT_TRACTABLE.contains(&targets);
        let mut seconds: Vec<(&'static str, f64)> = Vec::new();
        let mut unpruned_exact = None;
        let mut frontier = None;

        let (num_buses, engine) = if exact_ok {
            let bitset = solve_bitset(&pre, &params);
            group.bench_function(format!("exact_bitset/{targets}"), |b| {
                b.iter(|| solve_bitset(&pre, &params));
            });
            seconds.push(("exact_bitset", min_time(3, || solve_bitset(&pre, &params))));

            // The unpruned bitset pipeline: completes at 12/24 (recorded
            // for the pruning speedup), dies on the node budget at 32 —
            // the moved cliff, measured rather than remembered.
            let unpruned = Exact::default().with_pruning(PruningLevel::Off);
            let start = Instant::now();
            match unpruned.synthesize(&pre, &params) {
                Ok(out) => {
                    assert_eq!(
                        (out.num_buses, out.max_bus_overlap),
                        bitset,
                        "pruned and unpruned exact answers diverged at {targets} targets"
                    );
                    let s = min_time(2, || unpruned.synthesize(&pre, &params).expect("completed"));
                    seconds.push(("exact_bitset_unpruned", s));
                    unpruned_exact = Some(Some(s));
                }
                Err(_) => {
                    // Budget death: record how long the budget took to burn.
                    seconds.push(("exact_unpruned_budget_burn", start.elapsed().as_secs_f64()));
                    unpruned_exact = Some(None);
                }
            }
            (bitset.0, "exact")
        } else {
            // Beyond the exact frontier: the 14/15-bus feasibility phase
            // transition at 48 targets (and its analogue at 96) defeats
            // exact proofs — bitset, dense and MILP alike — so the
            // portfolio's budgeted attempt falls back to the repair-
            // enabled heuristic. Record whichever engine actually
            // answered, so the trajectory notices if solver improvements
            // move the cliff again, plus the infeasibility frontier the
            // pruned proofs do reach.
            frontier = Some(infeasibility_frontier(&pre));
            let out = Portfolio::with_budget(PROBE_BUDGET)
                .synthesize(&pre, &params)
                .expect("portfolio never fails");
            let engine = match out.engine {
                SynthesisEngine::Exact => "portfolio-exact",
                SynthesisEngine::Heuristic => "portfolio-heuristic",
            };
            (out.num_buses, engine)
        };

        group.bench_function(format!("heuristic/{targets}"), |b| {
            b.iter(|| Heuristic::default().synthesize(&pre, &params).unwrap());
        });
        seconds.push((
            "heuristic",
            min_time(3, || {
                Heuristic::default().synthesize(&pre, &params).unwrap()
            }),
        ));
        let portfolio = Portfolio::with_budget(if exact_ok {
            params.solve_limits.clone()
        } else {
            PROBE_BUDGET
        });
        group.bench_function(format!("portfolio/{targets}"), |b| {
            b.iter(|| portfolio.synthesize(&pre, &params).unwrap());
        });
        seconds.push((
            "portfolio",
            min_time(3, || portfolio.synthesize(&pre, &params).unwrap()),
        ));

        size_points.push(SizePoint {
            targets,
            conflict_pairs: pre.conflicts.num_conflicts(),
            lower_bound: pre.bus_lower_bound(),
            num_buses,
            engine,
            seconds,
            unpruned_exact,
            frontier,
        });
    }
    group.finish();

    // --- θ-sweep: per-point rebuild vs sweep-resident re-threshold. ---
    let theta_targets = *SIZES.last().expect("non-empty size list");
    let app = synthetic::scaled_soc(theta_targets, SEED);
    let rebuild = || {
        for &theta in &THETA_SWEEP {
            let p = params.clone().with_overlap_threshold(theta);
            std::hint::black_box(Preprocessed::analyze(&app.trace, &p));
        }
    };
    let incremental = || {
        let pre = Preprocessed::analyze(&app.trace, &params);
        for &theta in &THETA_SWEEP {
            std::hint::black_box(pre.at_threshold(theta));
        }
    };
    // Equality first (the equivalence suites prove this too; the bench
    // refuses to time diverging paths).
    {
        let pre = Preprocessed::analyze(&app.trace, &params);
        for &theta in &THETA_SWEEP {
            let p = params.clone().with_overlap_threshold(theta);
            assert_eq!(
                pre.at_threshold(theta).conflicts,
                Preprocessed::analyze(&app.trace, &p).conflicts,
                "incremental θ-sweep diverged at θ={theta}"
            );
        }
    }
    let mut theta_group = c.benchmark_group("phase2_theta_sweep_96");
    theta_group.sample_size(5);
    theta_group.bench_function("rebuild_per_point", |b| b.iter(rebuild));
    theta_group.bench_function("incremental_profile", |b| b.iter(incremental));
    theta_group.finish();
    let rebuild_s = min_time(3, rebuild);
    let incremental_s = min_time(3, incremental);

    // --- Probe scheduler at a fully exact-tractable size. ---
    let sched_targets = 24;
    let pre24 = pre_of(sched_targets, &params);
    let sequential = synthesize(&pre24, &params).unwrap();
    let sequential_s = min_time(3, || synthesize(&pre24, &params).unwrap());
    let jobs_nz = NonZeroUsize::new(jobs).expect("parallelism is positive");
    let parallel_s = min_time(3, || {
        ProbeScheduler::new(jobs_nz)
            .synthesize(&pre24, &params)
            .unwrap()
    });
    let raced_s = min_time(3, || {
        ProbeScheduler::new(jobs_nz)
            .with_race(HeuristicOptions::default())
            .synthesize(&pre24, &params)
            .unwrap()
    });
    // Phase attribution for the raced run: the heuristic pre-pass over
    // exactly the probes the sequential search consumes. Without this the
    // PR-3 snapshot conflated pre-pass and exact time, which on a 1-core
    // host made `parallel_s`/`raced_s` read as a scheduler regression.
    let prepass = || {
        sequential
            .probes
            .iter()
            .filter(|&&(buses, _)| {
                stbus_milp::solve_heuristic(
                    &pre24.binding_problem(buses),
                    &HeuristicOptions::default(),
                )
                .is_some()
            })
            .count()
    };
    let raced_probes_certified = prepass();
    let raced_prepass_s = min_time(3, prepass);

    // --- Executor saturation: 2 design points × 48-target probes. ---
    // The question this row answers is a *scheduling* one: does a batch
    // narrower than the worker set keep the leftover workers busy with
    // the points' inner probe/repair tasks? The executor is grown to at
    // least 4 workers so the answer is observable even on small hosts;
    // on a 1-core host the peak measures OS-timesliced concurrency, not
    // parallel speedup, and the snapshot says so.
    const SATURATION_WORKERS: usize = 4;
    const SATURATION_POINTS: usize = 2;
    exec::ensure_workers(SATURATION_WORKERS);
    let sat_targets = 48;
    let sat_apps = vec![synthetic::scaled_soc(sat_targets, SEED)];
    let sat_grid: Vec<DesignParams> = [0.12, 0.16]
        .iter()
        .map(|&theta| sweep_params().with_overlap_threshold(theta))
        .collect();
    assert_eq!(sat_grid.len(), SATURATION_POINTS);
    let sat_jobs = NonZeroUsize::new(exec::workers()).expect("workers are positive");
    exec::reset_peak_busy();
    exec::reset_busy_integral();
    let sat_start = Instant::now();
    let sat_results = Batch::over(&sat_apps, sat_grid)
        .with_strategy(Portfolio::with_budget(PROBE_BUDGET).with_jobs(sat_jobs))
        .with_baselines(BaselineSet::none())
        .threads(SATURATION_POINTS)
        .run();
    let sat_wall_s = sat_start.elapsed().as_secs_f64();
    let sat_peak_busy = exec::peak_busy();
    // Time-weighted occupancy (worker·seconds / wall seconds). On a
    // 1-core host `peak_busy_workers` saturates at the worker count the
    // moment two tasks overlap for a microsecond; the integral is the
    // honest utilization figure there.
    let sat_busy_integral = exec::busy_integral();
    assert_eq!(sat_results.len(), SATURATION_POINTS);
    for point in &sat_results {
        assert!(point.result.is_ok(), "portfolio point failed");
    }
    // Machine-readable warning shared with the gateway throughput bench:
    // trajectory tooling filters on `code`, not prose.
    let sat_warning = stbus_bench::host_warning_json(jobs, "peak_busy_workers");
    if jobs == 1 {
        eprintln!(
            "warning: executor-saturation row measured on a 1-core host — \
             occupancy shows scheduling concurrency only"
        );
    }

    // --- Learned search at the 48-target phase transition. ---
    // The honest scoreboard of what conflict learning buys at the size
    // the exact engines stall on: the 15-bus witness becomes an *exact*
    // certificate (previously only the repair heuristic reached it),
    // the ≤13-bus infeasibility proofs collapse to a handful of nodes,
    // and 14 buses stays open — recorded, not hidden. Asserts double as
    // the tractability guard (the `learned_transition_stays_certified`
    // release test mirrors them in CI).
    let learned_targets = 48;
    let pre48 = pre_of(learned_targets, &params);
    let learned_budget = PROBE_BUDGET
        .with_search(SearchLevel::Learned)
        .with_learned_seed(0);
    let (witness, witness_stats) = pre48
        .binding_problem(15)
        .find_feasible_stats(&learned_budget)
        .expect("learned 15-bus probe must stay within the probe budget");
    let witness = witness.expect("learned search must certify the 15-bus witness at 48 targets");
    assert!(
        pre48.binding_problem(15).verify(&witness).is_some(),
        "learned 15-bus witness must verify"
    );
    let witness_s = min_time(3, || {
        pre48
            .binding_problem(15)
            .find_feasible_stats(&learned_budget)
            .expect("within budget")
    });
    // The standard engine under the identical budget: record the burn.
    let burn_start = Instant::now();
    let standard_15 = pre48.binding_problem(15).find_feasible(&PROBE_BUDGET);
    let standard_burn_s = burn_start.elapsed().as_secs_f64();
    let standard_15_outcome = match standard_15 {
        Ok(Some(_)) => "feasible",
        Ok(None) => "infeasible",
        Err(_) => "budget",
    };
    // Learned infeasibility frontier plus the first undecided count.
    let (learned_frontier, open_buses, open_outcome) = {
        let lb = pre48.bus_lower_bound();
        let mut proven = lb - 1;
        let mut open = (lb, "budget");
        for buses in lb..=learned_targets {
            match pre48
                .binding_problem(buses)
                .find_feasible_stats(&learned_budget)
            {
                Ok((None, _)) => proven = buses,
                Ok((Some(_), _)) => {
                    open = (buses, "feasible");
                    break;
                }
                Err(_) => {
                    open = (buses, "budget");
                    break;
                }
            }
        }
        (proven, open.0, open.1)
    };
    assert!(
        learned_frontier >= 13,
        "learned infeasibility frontier regressed below 13 buses at 48 targets          (proved through {learned_frontier})"
    );

    // --- JSON snapshot for the perf trajectory (workspace root). ---
    let mut sizes_json = String::new();
    for (i, p) in size_points.iter().enumerate() {
        if i > 0 {
            sizes_json.push_str(",\n");
        }
        let mut secs = String::new();
        for (j, (k, v)) in p.seconds.iter().enumerate() {
            if j > 0 {
                secs.push_str(", ");
            }
            write!(secs, "\"{k}\": {v:.6}").expect("write to string");
        }
        let unpruned = match p.unpruned_exact {
            None => String::from("null"),
            Some(None) => String::from("\"budget\""),
            Some(Some(s)) => format!("{s:.6}"),
        };
        let frontier = p.frontier.map_or(String::from("null"), |f| f.to_string());
        write!(
            sizes_json,
            "    {{\"targets\": {}, \"conflict_pairs\": {}, \"lower_bound\": {}, \
             \"num_buses\": {}, \"engine\": \"{}\", \"seconds\": {{{secs}}}, \
             \"unpruned_exact\": {unpruned}, \
             \"proved_infeasible_through\": {frontier}}}",
            p.targets, p.conflict_pairs, p.lower_bound, p.num_buses, p.engine
        )
        .expect("write to string");
    }
    let snapshot = format!(
        "{{\n  \"bench\": \"phase3_size_sweep\",\n  \"date\": \"{date}\",\n  \
         \"host_parallelism\": {jobs},\n  \
         \"workload\": {{\"family\": \"synthetic_scaled_soc\", \"seed\": {SEED}, \
         \"overlap_threshold\": 0.12, \"window_size\": 2000, \"maxtb\": 6, \
         \"pruning\": \"standard\", \"frontier_node_budget\": {frontier_budget}}},\n  \
         \"sizes\": [\n{sizes_json}\n  ],\n  \
         \"theta_sweep\": {{\"targets\": {theta_targets}, \"points\": {points}, \
         \"rebuild_per_point_s\": {rebuild_s:.6}, \"incremental_profile_s\": {incremental_s:.6}, \
         \"speedup_incremental_vs_rebuild\": {theta_speedup:.2}}},\n  \
         \"probe_scheduler\": {{\"targets\": {sched_targets}, \"jobs\": {jobs}, \
         \"sequential_s\": {sequential_s:.6}, \"parallel_s\": {parallel_s:.6}, \
         \"raced_s\": {raced_s:.6}, \"raced_heuristic_prepass_s\": {raced_prepass_s:.6}, \
         \"raced_probes_certified\": {raced_probes_certified}, \
         \"consumed_probes\": {consumed_probes}}},\n  \
         \"executor_saturation\": {{\"batch_points\": {SATURATION_POINTS}, \
         \"targets\": {sat_targets}, \"executor_workers\": {sat_workers}, \
         \"probe_jobs\": {sat_probe_jobs}, \"peak_busy_workers\": {sat_peak_busy}, \
         \"busy_worker_integral_s\": {sat_busy_integral:.6}, \
         \"mean_busy_workers\": {sat_mean_busy:.3}, \
         \"wall_s\": {sat_wall_s:.6}, \"warning\": {sat_warning}}},\n  \
         \"learned_search\": {{\"targets\": {learned_targets}, \
         \"probe_budget\": {frontier_budget}, \"seed\": 0, \
         \"witness_15_buses\": {{\"nodes\": {w_nodes}, \"restarts\": {w_restarts}, \
         \"nogoods_learned\": {w_learned}, \"nogood_hits\": {w_hits}, \
         \"seconds\": {witness_s:.6}, \
         \"standard_same_budget\": \"{standard_15_outcome}\", \
         \"standard_budget_burn_s\": {standard_burn_s:.6}}}, \
         \"proved_infeasible_through\": {learned_frontier}, \
         \"open\": {{\"buses\": {open_buses}, \"outcome\": \"{open_outcome}\"}}}}\n}}\n",
        date = stbus_bench::today_utc(),
        points = THETA_SWEEP.len(),
        theta_speedup = rebuild_s / incremental_s,
        frontier_budget = PROBE_BUDGET.max_nodes,
        consumed_probes = sequential.probes.len(),
        sat_workers = exec::workers(),
        sat_probe_jobs = sat_jobs.get(),
        sat_mean_busy = sat_busy_integral / sat_wall_s,
        w_nodes = witness_stats.nodes,
        w_restarts = witness_stats.restarts,
        w_learned = witness_stats.nogoods_learned,
        w_hits = witness_stats.nogood_hits,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phase3.json");
    // The gateway-throughput and incremental-resynthesis benches share
    // this snapshot file; carry their rows forward instead of clobbering
    // them (and vice versa over there).
    let old = std::fs::read_to_string(path).ok();
    let mut snapshot = snapshot;
    for key in ["gateway_throughput", "incremental_resynthesis", "hotpath"] {
        if let Some(row) = old
            .as_deref()
            .and_then(|old| stbus_bench::extract_top_level(old, key))
        {
            snapshot = stbus_bench::merge_top_level(&snapshot, key, &row);
        }
    }
    std::fs::write(path, &snapshot).expect("write BENCH_phase3.json");
    println!("wrote {path}");
    print!("{snapshot}");

    // Dated single-line append for the perf trajectory (CI sets
    // BENCH_HISTORY=BENCH_history.jsonl).
    if let Ok(history) = std::env::var("BENCH_HISTORY") {
        // Cargo runs benches with the package dir as cwd; resolve
        // relative paths against the workspace root so
        // `BENCH_HISTORY=BENCH_history.jsonl` lands next to
        // BENCH_phase3.json, not inside crates/bench.
        let history = std::path::PathBuf::from(&history);
        let history = if history.is_absolute() {
            history
        } else {
            std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(history)
        };
        let line = snapshot.replace('\n', " ").trim().to_string() + "\n";
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&history)
            .and_then(|mut f| f.write_all(line.as_bytes()))
            .expect("append BENCH_history");
        println!("appended to {}", history.display());
    }
}

criterion_group!(benches, bench_phase3);
criterion_main!(benches);
