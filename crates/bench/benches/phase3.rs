//! Phase-3 solve benchmark on a synthetic 24-target SoC — the scale story
//! of the bitset conflict-graph refactor.
//!
//! Measures the exact, heuristic and portfolio synthesis modes on an SoC
//! roughly twice the paper's largest suite, and — in the same run — the
//! **pre-refactor dense-matrix baseline** (dense `Vec<bool>` conflicts,
//! member-list rescans, plain greedy-clique lower bound) so the speedup is
//! always a measured number, never a remembered one. The wall-clock
//! results are snapshotted to `BENCH_phase3.json` at the workspace root to
//! populate the perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use stbus_core::synthesizer::{Exact, Heuristic, Portfolio, Synthesizer};
use stbus_core::{DesignParams, Preprocessed};
use stbus_milp::{dense, Binding, BindingProblem, SolveLimits};
use stbus_traffic::workloads::synthetic::{self, SyntheticParams};
use std::time::Instant;

const SEED: u64 = 0xDA7E_2005;
const TARGETS: usize = 24;

fn large_soc_pre() -> (Preprocessed, DesignParams) {
    // A conflict-dense operating point (≈190 conflict pairs over 24
    // targets, deep MILP-2 tree): the regime the refactor targets.
    let params = DesignParams::default()
        .with_overlap_threshold(0.12)
        .with_window_size(2_000)
        .with_maxtb(6);
    let app = synthetic::with_params(
        &SyntheticParams {
            processors: TARGETS,
            duty: 0.35,
            ..SyntheticParams::default()
        },
        SEED,
    );
    assert_eq!(app.spec.num_targets(), TARGETS);
    (Preprocessed::analyze(&app.trace, &params), params)
}

/// The pre-refactor bus lower bound: bandwidth, **plain greedy clique**
/// (not the coloring-strengthened bound) and the maxtb pigeonhole.
fn dense_lower_bound(pre: &Preprocessed) -> usize {
    let bw = (0..pre.stats.num_windows())
        .map(|m| pre.stats.window_demand(m).div_ceil(pre.stats.window_len(m)))
        .max()
        .unwrap_or(0);
    let bw = usize::try_from(bw).unwrap_or(usize::MAX);
    let pigeonhole = pre.stats.num_targets().div_ceil(pre.maxtb);
    bw.max(pre.conflicts.clique_lower_bound())
        .max(pigeonhole)
        .max(1)
}

/// Phase-3 exact solve skeleton (binary-searched MILP-1 + MILP-2 at the
/// minimum size), parameterised over the solver pair so the bitset path
/// and the dense reference run the *same* algorithm.
fn phase3_exact(
    pre: &Preprocessed,
    lower_bound: usize,
    find: impl Fn(&BindingProblem) -> Option<Binding>,
    optimize: impl Fn(&BindingProblem) -> Option<Binding>,
) -> (usize, u64) {
    let n = pre.stats.num_targets();
    let mut lo = lower_bound;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if find(&pre.binding_problem(mid)).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let binding = optimize(&pre.binding_problem(lo)).expect("minimum size is feasible");
    (lo, binding.max_bus_overlap())
}

fn solve_bitset(pre: &Preprocessed, params: &DesignParams) -> (usize, u64) {
    let out = Exact::default()
        .synthesize(pre, params)
        .expect("within limits");
    (out.num_buses, out.max_bus_overlap)
}

fn solve_dense(pre: &Preprocessed, params: &DesignParams) -> (usize, u64) {
    let limits = params.solve_limits;
    phase3_exact(
        pre,
        dense_lower_bound(pre),
        |p| dense::find_feasible_dense(p, &limits).expect("within limits"),
        |p| dense::optimize_dense(p, &limits).expect("within limits"),
    )
}

/// Times `f` over `iters` runs and returns the minimum wall-clock seconds.
fn min_time<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_phase3(c: &mut Criterion) {
    let (pre, params) = large_soc_pre();

    // Same answer before measuring speed: the bitset solver must be
    // bit-identical to the dense-matrix baseline.
    let bitset = solve_bitset(&pre, &params);
    let dense_result = solve_dense(&pre, &params);
    assert_eq!(
        bitset, dense_result,
        "bitset and dense phase-3 answers diverged"
    );

    let mut group = c.benchmark_group("phase3_24target");
    group.sample_size(10);
    group.bench_function("exact_bitset", |b| {
        b.iter(|| solve_bitset(&pre, &params));
    });
    group.bench_function("exact_dense_baseline", |b| {
        b.iter(|| solve_dense(&pre, &params));
    });
    group.bench_function("heuristic", |b| {
        b.iter(|| Heuristic::default().synthesize(&pre, &params).unwrap());
    });
    group.bench_function("portfolio", |b| {
        b.iter(|| Portfolio::default().synthesize(&pre, &params).unwrap());
    });
    group.bench_function("portfolio_starved", |b| {
        b.iter(|| {
            Portfolio::with_budget(SolveLimits { max_nodes: 1_000 })
                .synthesize(&pre, &params)
                .unwrap()
        });
    });
    group.finish();

    // JSON snapshot for the perf trajectory (workspace root).
    let exact_bitset_s = min_time(5, || solve_bitset(&pre, &params));
    let exact_dense_s = min_time(5, || solve_dense(&pre, &params));
    let heuristic_s = min_time(5, || {
        Heuristic::default().synthesize(&pre, &params).unwrap()
    });
    let portfolio_s = min_time(5, || {
        Portfolio::default().synthesize(&pre, &params).unwrap()
    });
    let snapshot = format!(
        "{{\n  \"bench\": \"phase3_24target\",\n  \"soc\": {{\"targets\": {TARGETS}, \"initiators\": {TARGETS}, \"workload\": \"synthetic\", \"seed\": {SEED}}},\n  \"design\": {{\"num_buses\": {}, \"max_bus_overlap\": {}, \"conflict_pairs\": {}, \"lower_bound_coloring\": {}, \"lower_bound_clique\": {}}},\n  \"seconds\": {{\n    \"exact_bitset\": {exact_bitset_s:.6},\n    \"exact_dense_baseline\": {exact_dense_s:.6},\n    \"heuristic\": {heuristic_s:.6},\n    \"portfolio\": {portfolio_s:.6}\n  }},\n  \"speedup_exact_bitset_vs_dense\": {:.2}\n}}\n",
        bitset.0,
        bitset.1,
        pre.conflicts.num_conflicts(),
        pre.bus_lower_bound(),
        dense_lower_bound(&pre),
        exact_dense_s / exact_bitset_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phase3.json");
    std::fs::write(path, &snapshot).expect("write BENCH_phase3.json");
    println!("wrote {path}");
    print!("{snapshot}");
}

criterion_group!(benches, bench_phase3);
criterion_main!(benches);
