//! Conflict-driven nogood learning for the binding feasibility search —
//! the [`SearchLevel::Learned`] engine.
//!
//! The frozen-order DFS re-refutes the same constellation of placements
//! thousands of times on phase-transition instances (48 targets at
//! θ = 0.12): a clique or bandwidth certificate fires deep in one
//! subtree, the search backtracks, rebuilds an isomorphic prefix
//! elsewhere, and pays for the identical refutation again. This module
//! applies the classic CDCL insight to bus-mask assignments:
//!
//! * **Nogoods from certificates.** When a node is bound-refuted, the
//!   refuting certificate names the placements it actually used
//!   ([`crate::bounds::CliqueCoverBound::explain`]): the conflicting or
//!   capacity-consuming members behind a dead target or Hall violation.
//!   Those placements become a *clause* — "never again all of these at
//!   once" — that cuts every later subtree rebuilding the same
//!   constellation. Certificates without a cheap explanation (bandwidth
//!   flow, propagation/shaving) fall back to the full prefix, which is
//!   still a sound transposition cut across restarts.
//! * **Nogoods from exhaustion, by resolution.** When every bus fails
//!   for a target, the union of the per-bus failure reasons (a
//!   conflicting member, a full bus's member set, a vetoing clause's own
//!   literals, a refuted child subtree's reason) minus the target itself
//!   is a nogood for the *parent* — reasons resolve upward exactly like
//!   CDCL conflict analysis, shrinking towards the placements that
//!   matter.
//! * **Two-watched-target propagation.** A clause's literals are sorted
//!   by branching-order depth and the two *deepest* are watched. The
//!   branching order is frozen, so the watches never relocate: the
//!   deepest literal's target indexes a veto list consulted exactly once
//!   per node (when that target is being branched — every other literal
//!   is already bound), and the second-deepest indexes a kill list that
//!   retires the clause for the duration of a mismatching subtree. Each
//!   DFS node therefore touches only the clauses watching the target it
//!   just bound.
//! * **Luby restarts with value-order perturbation.** Feasibility
//!   witnesses at the phase transition are plentiful but hide behind the
//!   deterministic value order's early mistakes. Restart `r` of the Luby
//!   schedule permutes the *bus* order with a deterministic xorshift of
//!   `(seed, member, r)` — the target order stays frozen, which is what
//!   keeps every learned clause sound across restarts — and the store
//!   carries over, so each restart starts where all previous ones'
//!   refutations left off.
//! * **A deterministic restart portfolio.** Two members with decorrelated
//!   perturbation sequences race on the process-wide executor
//!   ([`stbus_exec::scope`]); the lowest-indexed member with a definitive
//!   answer wins and the rest are cancelled. Winner selection is by
//!   member index, never by wall-clock, so verdicts, restart counts and
//!   clause counts are identical at any worker count.
//!
//! # Soundness
//!
//! Certificate-seeded clauses are sound in the *full* assignment space:
//! every rejection they rest on (a conflict, a full bus, an overflowed
//! window) is monotone under additional placements. Exhaustion clauses
//! are sound in the *canonical* space carved out by the first-empty-bus
//! symmetry rule; canonicality is a property of the partial assignment
//! under the frozen target order — independent of the value order — so
//! they transfer across restarts, and exhausting the canonical space
//! proves true infeasibility exactly as the standard search does. An
//! empty clause (a refutation resting on no placements) certifies the
//! instance infeasible outright and short-circuits the whole search.
//!
//! The contract mirrors [`crate::PruningLevel::Aggressive`]: identical
//! feasibility verdicts whenever both engines complete within budget —
//! witnesses verify against the untouched constraint checks, and
//! infeasibility means canonical exhaustion under sound cuts — while the
//! returned binding (and downstream probe logs) may differ. The
//! `learned_search_equivalence` suite and its proptests enforce this
//! against the standard engine.
//!
//! [`SearchLevel::Learned`]: super::SearchLevel::Learned

use super::{
    mask_pair_overlap, Binding, BindingProblem, NodeLimitExceeded, SearchArena, SearchInterrupted,
    SearchStats, SolveLimits, CANCEL_POLL_MASK,
};
use crate::bounds::{self, CombinedBound, LowerBound, PruningLevel, Refutation};
use stbus_exec::CancelToken;
use stbus_traffic::TargetSet;

/// Portfolio width: member 0 runs the base perturbation sequence
/// (restart 0 is the identity order — the standard search's own value
/// order), member 1 a decorrelated one. Constant, so results are
/// independent of the executor's worker count.
const PORTFOLIO_WIDTH: usize = 2;

/// Nodes per Luby unit: restart `r` runs `RESTART_UNIT × luby(r + 1)`
/// branch attempts before perturbing the value order.
const RESTART_UNIT: u64 = 4096;

/// Longest clause worth storing. Longer reasons (typically prefix
/// fallbacks) still resolve upward into parent reasons — they are just
/// not worth a slot in the watched store, where their firing probability
/// is negligible and their scan cost is not.
const MAX_LITS: usize = 16;

/// Soft clause-store capacity: the restart-boundary maintenance evicts
/// the lowest-activity clauses beyond this.
const STORE_CAP: usize = 4096;

/// Hard in-burst ceiling: learning pauses (the search stays sound — a
/// skipped clause only forgoes future cuts) until the next restart
/// compaction once the store grows this far.
const STORE_HARD_CAP: usize = 6144;

/// Activity added when a clause fires a veto; all activities are halved
/// at every restart, so recently useful clauses survive eviction.
const ACTIVITY_BUMP: u32 = 8;

/// Sentinel for "no clause" in the per-node veto frame.
const NO_CLAUSE: u32 = u32::MAX;

/// Luby sequence, 1-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(mut i: u64) -> u64 {
    loop {
        // Find k with 2^(k-1) <= i < 2^k.
        let k = 64 - i.leading_zeros() as u64;
        if i == (1 << k) - 1 {
            return 1 << (k - 1);
        }
        i -= (1 << (k - 1)) - 1;
    }
}

/// SplitMix64 finalizer — the seed mixer (a zero seed is fine).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic bus-order permutation for `(seed, member, restart)`.
/// Member 0's restart 0 is the identity — the standard value order.
fn value_order(buses: usize, seed: u64, member: u64, restart: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..buses).collect();
    if member == 0 && restart == 0 {
        return order;
    }
    let mut state = mix(seed ^ mix(member.wrapping_mul(0x5EED_C0DE).wrapping_add(restart)));
    for i in (1..buses).rev() {
        // xorshift64 step + Lemire-style bounded draw.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// One learned nogood: "not all of these placements at once". Literals
/// are `(target, bus)` pairs sorted by branching-order depth, deepest
/// last; the deepest literal is the veto watch, the second-deepest the
/// kill watch.
struct Clause {
    lits: Vec<(u32, u32)>,
    activity: u32,
    /// Depth at which the kill watch retired this clause for the current
    /// subtree, `-1` when live. Kills unwind exactly with the DFS, so
    /// between restarts every clause is live again.
    killed_at: i32,
    fingerprint: u64,
}

/// The bounded learned-clause store with its static two-watch lists.
struct NogoodStore {
    clauses: Vec<Clause>,
    /// Per target `t`: clauses whose deepest literal's target is `t`,
    /// scanned once when `t` is branched (all other literals bound).
    watch_veto: Vec<Vec<u32>>,
    /// Per target `t`: clauses whose second-deepest literal's target is
    /// `t`, checked once when `t` is assigned (a mismatch retires the
    /// clause until that assignment unwinds).
    watch_kill: Vec<Vec<u32>>,
    /// Clause fingerprints, for dedup across learn sites and restarts.
    seen: std::collections::HashSet<u64>,
    /// Clauses ever learned and stored (monotone; survives eviction).
    learned_total: u64,
    /// Veto firings (clauses whose bound literals all matched).
    hits: u64,
}

/// What [`NogoodStore::learn`] concluded about a refutation reason.
enum Learned {
    /// The reason was empty: the refutation rests on no placements at
    /// all, so the instance is infeasible outright.
    GlobalInfeasible,
    /// Clause stored (or skipped as too long / duplicate / store full —
    /// indistinguishable to the caller, which only propagates reasons).
    Recorded,
}

impl NogoodStore {
    fn new(num_targets: usize) -> Self {
        Self {
            clauses: Vec::new(),
            watch_veto: vec![Vec::new(); num_targets],
            watch_kill: vec![Vec::new(); num_targets],
            seen: std::collections::HashSet::new(),
            learned_total: 0,
            hits: 0,
        }
    }

    /// Installs the watches of clause `ci` (literals already sorted by
    /// depth, deepest last).
    fn attach(&mut self, ci: u32) {
        let lits = &self.clauses[ci as usize].lits;
        let deepest = lits[lits.len() - 1].0 as usize;
        self.watch_veto[deepest].push(ci);
        if lits.len() >= 2 {
            let second = lits[lits.len() - 2].0 as usize;
            self.watch_kill[second].push(ci);
        }
    }

    /// Learns a clause from a refutation reason: the recorded targets
    /// with their current buses. An empty reason is a global
    /// infeasibility certificate; over-long, duplicate, or
    /// store-overflow clauses are silently skipped (the refutation
    /// itself was already acted on).
    fn learn(&mut self, reason: &[u64], assigned_bus: &[i32], pos: &[u32]) -> Learned {
        let mut lits: Vec<(u32, u32)> = Vec::new();
        for (w, &word) in reason.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let t = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let bus = assigned_bus[t];
                debug_assert!(bus >= 0, "nogood literal over an unbound target");
                lits.push((t as u32, bus as u32));
                if lits.len() > MAX_LITS {
                    return Learned::Recorded;
                }
            }
        }
        if lits.is_empty() {
            return Learned::GlobalInfeasible;
        }
        if self.clauses.len() >= STORE_HARD_CAP {
            return Learned::Recorded;
        }
        lits.sort_unstable_by_key(|&(t, _)| pos[t as usize]);
        let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
        for &(t, k) in &lits {
            fingerprint ^= u64::from(t) << 32 | u64::from(k);
            fingerprint = fingerprint.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if !self.seen.insert(fingerprint) {
            return Learned::Recorded;
        }
        let ci = self.clauses.len() as u32;
        self.clauses.push(Clause {
            lits,
            activity: ACTIVITY_BUMP,
            killed_at: -1,
            fingerprint,
        });
        self.attach(ci);
        self.learned_total += 1;
        Learned::Recorded
    }

    /// The once-per-node veto scan for the target being branched: every
    /// live clause watching `t` whose other literals all match the
    /// current assignment vetoes its deepest literal's bus. Fills
    /// `vetoed_by[k]` with the (first) vetoing clause per bus.
    fn veto_scan(&mut self, t: usize, assigned_bus: &[i32], vetoed_by: &mut [u32]) {
        vetoed_by.fill(NO_CLAUSE);
        for wi in 0..self.watch_veto[t].len() {
            let ci = self.watch_veto[t][wi];
            let clause = &mut self.clauses[ci as usize];
            if clause.killed_at >= 0 {
                continue;
            }
            let n = clause.lits.len();
            if clause.lits[..n - 1]
                .iter()
                .all(|&(x, b)| assigned_bus[x as usize] == b as i32)
            {
                clause.activity = clause.activity.saturating_add(ACTIVITY_BUMP);
                self.hits += 1;
                let k = clause.lits[n - 1].1 as usize;
                if vetoed_by[k] == NO_CLAUSE {
                    vetoed_by[k] = ci;
                }
            }
        }
    }

    /// Kill-watch processing for the assignment `t → k`: clauses whose
    /// second-deepest literal is `(t, other-bus)` can no longer fire in
    /// this subtree; they are retired and recorded on `trail` so the
    /// caller revives them when the assignment unwinds.
    fn kill_on_assign(&mut self, t: usize, k: usize, depth: i32, trail: &mut Vec<u32>) {
        let Self {
            watch_kill,
            clauses,
            ..
        } = self;
        for &ci in &watch_kill[t] {
            let clause = &mut clauses[ci as usize];
            let second = clause.lits[clause.lits.len() - 2];
            if clause.killed_at < 0 && second.1 as usize != k {
                clause.killed_at = depth;
                trail.push(ci);
            }
        }
    }

    /// Revives the clauses retired since `mark` (the trail length before
    /// the matching [`NogoodStore::kill_on_assign`]).
    fn revive(&mut self, trail: &mut Vec<u32>, mark: usize) {
        while trail.len() > mark {
            let ci = trail.pop().expect("trail shrinks to its own mark");
            self.clauses[ci as usize].killed_at = -1;
        }
    }

    /// Union of a clause's literal targets minus `skip` into a reason
    /// bitset — the resolution step of exhaustion analysis.
    fn clause_reason(&self, ci: u32, skip: usize, reason: &mut [u64]) {
        for &(t, _) in &self.clauses[ci as usize].lits {
            let t = t as usize;
            if t != skip {
                reason[t / 64] |= 1u64 << (t % 64);
            }
        }
    }

    /// Restart-boundary maintenance: halve all activities (aging) and,
    /// beyond [`STORE_CAP`], evict the lowest-activity clauses
    /// (index-tiebroken, so the survivors are deterministic) and rebuild
    /// the watch lists. No kills are live between restarts.
    fn restart_maintenance(&mut self) {
        for clause in &mut self.clauses {
            clause.activity /= 2;
            debug_assert_eq!(clause.killed_at, -1, "kill trail fully unwound");
        }
        if self.clauses.len() <= STORE_CAP {
            return;
        }
        let mut by_activity: Vec<u32> = (0..self.clauses.len() as u32).collect();
        by_activity.sort_unstable_by_key(|&ci| {
            (std::cmp::Reverse(self.clauses[ci as usize].activity), ci)
        });
        by_activity.truncate(STORE_CAP);
        by_activity.sort_unstable();
        let mut survivors = Vec::with_capacity(STORE_CAP);
        for &ci in &by_activity {
            // Indices are ascending, so a swap-free drain preserves
            // relative order via plain moves.
            survivors.push(std::mem::replace(
                &mut self.clauses[ci as usize],
                Clause {
                    lits: Vec::new(),
                    activity: 0,
                    killed_at: -1,
                    fingerprint: 0,
                },
            ));
        }
        self.clauses = survivors;
        self.seen.clear();
        for list in &mut self.watch_veto {
            list.clear();
        }
        for list in &mut self.watch_kill {
            list.clear();
        }
        for ci in 0..self.clauses.len() as u32 {
            self.seen.insert(self.clauses[ci as usize].fingerprint);
            self.attach(ci);
        }
    }
}

/// Why a DFS invocation stopped without a node outcome.
enum Stop {
    /// The restart burst's node allowance ran out.
    Burst,
    /// The overall node budget ([`SolveLimits::max_nodes`]) ran out.
    Budget,
    /// A cancellation token was raised.
    Cancelled,
    /// An empty clause was learned: certified global infeasibility.
    GlobalInfeasible,
}

/// The two definitive node outcomes.
enum NodeOutcome {
    /// A feasible leaf was reached; the witness is in `Search::witness`.
    Feasible,
    /// The subtree is exhausted or refuted; the reason is in the node's
    /// reason frame.
    Refuted,
}

/// Per-restart search state: the same arena-backed DFS as the standard
/// engine, minus optimisation mode, plus the nogood machinery.
struct Search<'a> {
    problem: &'a BindingProblem,
    order: &'a [usize],
    /// `pos[t]` = depth of target `t` in the branching order.
    pos: &'a [u32],
    sparse: &'a [Vec<(usize, u64)>],
    peak: &'a [u64],
    total: &'a [u64],
    critical: &'a [usize],
    value_order: &'a [usize],
    limits: &'a SolveLimits,
    cancel: Option<&'a CancelToken>,
    member_token: &'a CancelToken,
    /// Cumulative node count (carried across restarts by the member).
    nodes: u64,
    /// Node count at which the current burst ends.
    burst_end: u64,
    arena: SearchArena,
    prune_bound: CombinedBound,
    store: &'a mut NogoodStore,
    /// Target-indexed assignment, `-1` for unbound.
    assigned_bus: Vec<i32>,
    /// Kill trail (clause indices), unwound per assignment.
    kill_trail: Vec<u32>,
    witness: Option<Binding>,
    /// Bitset words per reason frame.
    words: usize,
}

impl Search<'_> {
    /// One DFS node at `depth`. `reasons` / `cols` / `vetoes` are this
    /// depth's scratch frames followed by the deeper frames
    /// (`split_at_mut` on the way down, exactly like the standard
    /// engine's candidate frames).
    fn dfs(
        &mut self,
        depth: usize,
        reasons: &mut [u64],
        cols: &mut [bool],
        vetoes: &mut [u32],
    ) -> Result<NodeOutcome, Stop> {
        let problem = self.problem;
        let num_buses = problem.num_buses;
        let (reason, rest_reasons) = reasons.split_at_mut(self.words);
        reason.fill(0);
        if depth == self.order.len() {
            let assignment: Vec<usize> = self.assigned_bus.iter().map(|&k| k as usize).collect();
            let max_bus_overlap = (0..self.arena.buses)
                .map(|k| mask_pair_overlap(problem, self.arena.mask(k)))
                .max()
                .unwrap_or(0);
            self.witness = Some(Binding {
                assignment,
                max_bus_overlap,
            });
            return Ok(NodeOutcome::Feasible);
        }
        // Per-node lower bound, with certificate → clause extraction on
        // refutation. The hot (non-refuting) path is the same bound the
        // standard engine pays; explanation runs only where the subtree
        // is already cut.
        if self.limits.pruning != PruningLevel::Off {
            let Self {
                arena, prune_bound, ..
            } = self;
            let ctx = bounds::PruneContext {
                problem,
                order: self.order,
                critical_windows: self.critical,
                target_total: self.total,
                unbound: &arena.unbound,
                bus_masks: &arena.masks,
                mask_words: arena.words,
                bus_len: &arena.lens,
                used: &arena.used,
                total_slack: &arena.total_slack,
                min_slack: &arena.min_slack,
                rem_window: &arena.rem_window,
                peak: self.peak,
                sparse: self.sparse,
                usable_matrix: Some(&arena.usable),
            };
            if prune_bound.buses_needed(&ctx) > num_buses {
                match prune_bound.explain(&ctx) {
                    Some(Refutation::Global) => return Err(Stop::GlobalInfeasible),
                    Some(Refutation::Assignments(set)) => {
                        reason.copy_from_slice(set.words());
                    }
                    None => {
                        // No cheap explanation (bandwidth / escalation
                        // certificate): the full prefix is the reason.
                        for &t in &self.order[..depth] {
                            reason[t / 64] |= 1u64 << (t % 64);
                        }
                    }
                }
                if let Learned::GlobalInfeasible =
                    self.store.learn(reason, &self.assigned_bus, self.pos)
                {
                    return Err(Stop::GlobalInfeasible);
                }
                return Ok(NodeOutcome::Refuted);
            }
        }
        let t = self.order[depth];
        let (vetoed_by, rest_vetoes) = vetoes.split_at_mut(num_buses);
        self.store.veto_scan(t, &self.assigned_bus, vetoed_by);
        // Canonical empty bus: the lowest-indexed empty bus is the one
        // representative the symmetry rule branches on — a function of
        // the partial assignment alone, not of the perturbed value
        // order, so the canonical space (and with it every exhaustion
        // nogood) is identical across restarts and members.
        let first_empty = (0..num_buses).find(|&k| self.arena.lens[k] == 0);
        let (saved_col, rest_cols) = cols.split_at_mut(problem.num_targets);
        for &k in self.value_order {
            if self.arena.lens[k] == 0 && Some(k) != first_empty {
                continue; // symmetry: skipping costs no reason
            }
            if self.arena.lens[k] >= problem.maxtb {
                bus_members_reason(self.arena.mask(k), reason);
                continue;
            }
            if problem
                .conflict_graph()
                .conflicts_with_words(t, self.arena.mask(k))
            {
                conflict_member_reason(problem, t, self.arena.mask(k), reason);
                continue;
            }
            if vetoed_by[k] != NO_CLAUSE {
                self.store.clause_reason(vetoed_by[k], t, reason);
                continue;
            }
            self.nodes += 1;
            if self.nodes > self.limits.max_nodes {
                return Err(Stop::Budget);
            }
            if self.nodes > self.burst_end {
                return Err(Stop::Burst);
            }
            if self.nodes & CANCEL_POLL_MASK == 0
                && (self.member_token.is_cancelled()
                    || self.cancel.is_some_and(CancelToken::is_cancelled))
            {
                return Err(Stop::Cancelled);
            }
            let fits = self.peak[t] <= self.arena.min_slack[k]
                || (self.total[t] <= self.arena.total_slack[k]
                    && self.sparse[t].iter().all(|&(m, d)| {
                        self.arena.used[k * self.arena.windows + m] + d <= problem.capacities[m]
                    }));
            if !fits {
                bus_members_reason(self.arena.mask(k), reason);
                continue;
            }
            // Apply — the same incremental bookkeeping as the standard
            // engine, plus the kill watches.
            let saved_min_slack = self.arena.min_slack[k];
            for (ti, slot) in saved_col.iter_mut().enumerate() {
                *slot = self.arena.usable[ti * self.arena.buses + k];
            }
            let mut new_min = saved_min_slack;
            for &(m, d) in &self.sparse[t] {
                self.arena.used[k * self.arena.windows + m] += d;
                self.arena.rem_window[m] -= d;
                new_min = new_min
                    .min(problem.capacities[m] - self.arena.used[k * self.arena.windows + m]);
            }
            self.arena.min_slack[k] = new_min;
            self.arena.total_slack[k] -= self.total[t];
            self.arena.lens[k] += 1;
            self.arena.masks[k * self.arena.words + t / 64] |= 1u64 << (t % 64);
            self.arena.unbound.remove(t);
            self.arena
                .refresh_column(problem, self.total, self.peak, self.sparse, k);
            self.assigned_bus[t] = k as i32;
            let kill_mark = self.kill_trail.len();
            {
                let Self {
                    store, kill_trail, ..
                } = self;
                store.kill_on_assign(t, k, depth as i32, kill_trail);
            }

            let outcome = self.dfs(depth + 1, rest_reasons, rest_cols, rest_vetoes);

            // Undo (exact reverse).
            {
                let Self {
                    store, kill_trail, ..
                } = self;
                store.revive(kill_trail, kill_mark);
            }
            self.assigned_bus[t] = -1;
            self.arena.unbound.insert(t);
            self.arena.lens[k] -= 1;
            self.arena.masks[k * self.arena.words + t / 64] &= !(1u64 << (t % 64));
            self.arena.total_slack[k] += self.total[t];
            self.arena.min_slack[k] = saved_min_slack;
            for &(m, d) in &self.sparse[t] {
                self.arena.used[k * self.arena.windows + m] -= d;
                self.arena.rem_window[m] += d;
            }
            for (ti, &slot) in saved_col.iter().enumerate() {
                self.arena.usable[ti * self.arena.buses + k] = slot;
            }

            match outcome? {
                NodeOutcome::Feasible => return Ok(NodeOutcome::Feasible),
                NodeOutcome::Refuted => {
                    // Resolution: the child's reason minus the branched
                    // target joins this node's reason.
                    let child = &rest_reasons[..self.words];
                    for (mine, &theirs) in reason.iter_mut().zip(child) {
                        *mine |= theirs;
                    }
                }
            }
        }
        // Every bus failed for `t`: the union of the failure reasons
        // (minus `t` itself) refutes this node — and is a learnable
        // nogood over placements of shallower targets.
        reason[t / 64] &= !(1u64 << (t % 64));
        if let Learned::GlobalInfeasible = self.store.learn(reason, &self.assigned_bus, self.pos) {
            return Err(Stop::GlobalInfeasible);
        }
        Ok(NodeOutcome::Refuted)
    }
}

/// Records every member of a bus mask into a reason bitset.
fn bus_members_reason(mask: &[u64], reason: &mut [u64]) {
    for (slot, &word) in reason.iter_mut().zip(mask) {
        *slot |= word;
    }
}

/// Records one member conflicting with `t` into a reason bitset (a
/// single conflicting member reproduces the veto in any superset).
fn conflict_member_reason(problem: &BindingProblem, t: usize, mask: &[u64], reason: &mut [u64]) {
    for (w, &wordv) in mask.iter().enumerate() {
        let mut word = wordv;
        while word != 0 {
            let j = w * 64 + word.trailing_zeros() as usize;
            if problem.conflicts(t, j) {
                reason[j / 64] |= 1u64 << (j % 64);
                return;
            }
            word &= word - 1;
        }
    }
    unreachable!("conflicts_with_words certified a conflicting member");
}

/// One portfolio member: the Luby restart loop over the learned DFS,
/// carrying the clause store (and the node budget) across restarts.
fn run_member(
    problem: &BindingProblem,
    limits: &SolveLimits,
    member: u64,
    cancel: Option<&CancelToken>,
    member_token: &CancelToken,
) -> (Result<Option<Binding>, SearchInterrupted>, SearchStats) {
    let order = problem.branching_order();
    let mut pos = vec![0u32; problem.num_targets];
    for (d, &t) in order.iter().enumerate() {
        pos[t] = d as u32;
    }
    let sparse: Vec<Vec<(usize, u64)>> = (0..problem.num_targets)
        .map(|t| {
            problem.demands[t]
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d > 0)
                .map(|(m, &d)| (m, d))
                .collect()
        })
        .collect();
    let peak: Vec<u64> = sparse
        .iter()
        .map(|s| s.iter().map(|&(_, d)| d).max().unwrap_or(0))
        .collect();
    let total: Vec<u64> = sparse
        .iter()
        .map(|s| s.iter().map(|&(_, d)| d).sum())
        .collect();
    let column_demand = bounds::column_demand(problem);
    let critical = bounds::critical_windows(&column_demand);
    let mut all_targets = TargetSet::empty(problem.num_targets);
    for t in 0..problem.num_targets {
        all_targets.insert(t);
    }
    let words = all_targets.words().len();

    let mut store = NogoodStore::new(problem.num_targets);
    let mut stats = SearchStats::default();
    let mut nodes = 0u64;
    let mut restart = 0u64;
    loop {
        if nodes >= limits.max_nodes {
            stats.nodes = nodes;
            stats.restarts = restart;
            stats.nogoods_learned = store.learned_total;
            stats.nogood_hits = store.hits;
            return (
                Err(SearchInterrupted::Budget(NodeLimitExceeded {
                    limit: limits.max_nodes,
                })),
                stats,
            );
        }
        let burst = RESTART_UNIT.saturating_mul(luby(restart + 1));
        let burst_end = nodes.saturating_add(burst).min(limits.max_nodes);
        let vo = value_order(problem.num_buses, limits.learned_seed, member, restart);

        let initial_min_slack = problem.capacities.iter().copied().min().unwrap_or(u64::MAX);
        let initial_total_slack: u64 = problem.capacities.iter().sum();
        let mut arena = SearchArena {
            buses: problem.num_buses,
            windows: problem.num_windows,
            words,
            used: vec![0; problem.num_buses * problem.num_windows],
            masks: vec![0; problem.num_buses * words],
            bus_overlap: vec![0; problem.num_buses],
            min_slack: vec![initial_min_slack; problem.num_buses],
            total_slack: vec![initial_total_slack; problem.num_buses],
            lens: vec![0; problem.num_buses],
            unbound: all_targets.clone(),
            rem_window: column_demand.clone(),
            usable: Vec::new(),
        };
        if limits.pruning != PruningLevel::Off {
            arena.usable = vec![false; problem.num_targets * problem.num_buses];
            for k in 0..problem.num_buses {
                arena.refresh_column(problem, &total, &peak, &sparse, k);
            }
        }
        let frames = problem.num_targets + 1;
        let mut reason_frames = vec![0u64; frames * words];
        let mut col_frames = vec![false; problem.num_targets * problem.num_targets];
        let mut veto_frames = vec![NO_CLAUSE; problem.num_targets * problem.num_buses];

        let mut search = Search {
            problem,
            order: &order,
            pos: &pos,
            sparse: &sparse,
            peak: &peak,
            total: &total,
            critical: &critical,
            value_order: &vo,
            limits,
            cancel,
            member_token,
            nodes,
            burst_end,
            arena,
            prune_bound: CombinedBound::default(),
            store: &mut store,
            assigned_bus: vec![-1; problem.num_targets],
            kill_trail: Vec::new(),
            witness: None,
            words,
        };
        let outcome = search.dfs(0, &mut reason_frames, &mut col_frames, &mut veto_frames);
        nodes = search.nodes;
        let witness = search.witness.take();

        stats.nodes = nodes;
        stats.restarts = restart;
        stats.nogoods_learned = store.learned_total;
        stats.nogood_hits = store.hits;
        match outcome {
            Ok(NodeOutcome::Feasible) => {
                let binding = witness.expect("feasible outcome leaves a witness");
                debug_assert!(
                    problem.verify(&binding).is_some(),
                    "learned-search witness failed re-verification"
                );
                return (Ok(Some(binding)), stats);
            }
            // Root exhaustion under sound cuts, or an empty learned
            // clause: certified infeasibility (not budget-limited).
            Ok(NodeOutcome::Refuted) | Err(Stop::GlobalInfeasible) => return (Ok(None), stats),
            Err(Stop::Budget) => {
                return (
                    Err(SearchInterrupted::Budget(NodeLimitExceeded {
                        limit: limits.max_nodes,
                    })),
                    stats,
                )
            }
            Err(Stop::Cancelled) => return (Err(SearchInterrupted::Cancelled), stats),
            Err(Stop::Burst) => {
                restart += 1;
                stats.restarts = restart;
                store.restart_maintenance();
            }
        }
    }
}

/// The learned feasibility search: a deterministic restart portfolio of
/// [`PORTFOLIO_WIDTH`] members raced on the process-wide executor. The
/// lowest-indexed member with a definitive answer (feasible witness or
/// certified infeasibility) wins — by index, never by wall-clock — and
/// later members are cancelled; earlier members that exhausted their
/// budget are still accounted in the returned [`SearchStats`]. Verdicts
/// and stats are therefore pure functions of `(problem, limits)`,
/// independent of worker count, which is what the probe scheduler's
/// replay determinism relies on.
pub(crate) fn find_feasible(
    problem: &BindingProblem,
    limits: &SolveLimits,
    cancel: Option<&CancelToken>,
) -> Result<(Option<Binding>, SearchStats), SearchInterrupted> {
    if problem.num_targets == 0 {
        return Ok((
            Some(Binding {
                assignment: Vec::new(),
                max_bus_overlap: 0,
            }),
            SearchStats::default(),
        ));
    }
    type MemberResult = (Result<Option<Binding>, SearchInterrupted>, SearchStats);
    stbus_exec::scope(|s: &stbus_exec::TaskScope<'_, '_, MemberResult>| {
        for member in 0..PORTFOLIO_WIDTH as u64 {
            s.submit(move |token: &CancelToken| run_member(problem, limits, member, cancel, token));
        }
        let mut stats = SearchStats::default();
        let mut failure: Option<SearchInterrupted> = None;
        for member in 0..PORTFOLIO_WIDTH {
            let (answer, member_stats) = s.take(member);
            stats.absorb(member_stats);
            match answer {
                Ok(definitive) => {
                    s.cancel_all();
                    return Ok((definitive, stats));
                }
                Err(interrupt) => {
                    // Budget dominates Cancelled: a cancelled member
                    // only surfaces when the caller cancelled the whole
                    // search (member tokens are raised by us alone after
                    // a win, which returns above).
                    match (&failure, interrupt) {
                        (_, SearchInterrupted::Budget(b)) => {
                            failure = Some(SearchInterrupted::Budget(b));
                        }
                        (None, SearchInterrupted::Cancelled) => {
                            failure = Some(SearchInterrupted::Cancelled);
                        }
                        _ => {}
                    }
                }
            }
        }
        Err(failure.expect("no winner implies a recorded failure"))
    })
}

#[cfg(test)]
mod tests {
    use super::super::{BindingProblem, SearchLevel, SolveLimits};
    use super::*;

    fn learned_limits(seed: u64) -> SolveLimits {
        SolveLimits::default()
            .with_search(SearchLevel::Learned)
            .with_learned_seed(seed)
    }

    #[test]
    fn luby_prefix() {
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn identity_value_order_for_member_zero() {
        assert_eq!(value_order(5, 7, 0, 0), vec![0, 1, 2, 3, 4]);
        // Later restarts and members really do perturb.
        assert_ne!(value_order(16, 7, 0, 1), (0..16).collect::<Vec<_>>());
        assert_ne!(value_order(16, 7, 1, 0), (0..16).collect::<Vec<_>>());
        // And deterministically so.
        assert_eq!(value_order(16, 7, 1, 3), value_order(16, 7, 1, 3));
    }

    #[test]
    fn verdicts_match_standard_on_small_instances() {
        let cases = vec![
            BindingProblem::new(1, 100, vec![vec![30], vec![40]]),
            BindingProblem::new(1, 100, vec![vec![60], vec![50]]),
            BindingProblem::new(2, 100, vec![vec![60], vec![50]]),
            BindingProblem::new(1, 100, vec![vec![80, 0], vec![30, 0]]),
            BindingProblem::new(2, 100, vec![vec![10], vec![10], vec![10]])
                .with_conflict(0, 1)
                .with_conflict(1, 2),
            BindingProblem::new(2, 100, vec![vec![1], vec![1], vec![1]])
                .with_conflict(0, 1)
                .with_conflict(1, 2)
                .with_conflict(0, 2),
            BindingProblem::new(1, 1000, vec![vec![1]; 5]).with_maxtb(4),
            BindingProblem::new(2, 1000, vec![vec![1]; 5]).with_maxtb(4),
            BindingProblem::new(5, 100, vec![vec![18]; 24]).with_maxtb(4),
            BindingProblem::new(4, 100, vec![vec![18]; 24]).with_maxtb(4),
        ];
        for (i, p) in cases.into_iter().enumerate() {
            let standard = p.find_feasible(&SolveLimits::default()).unwrap();
            let (learned, stats) = p.find_feasible_stats(&learned_limits(42)).unwrap();
            assert_eq!(
                standard.is_some(),
                learned.is_some(),
                "verdict mismatch on case {i}"
            );
            if let Some(b) = learned {
                assert!(p.verify(&b).is_some(), "unverifiable witness on case {i}");
                // A witness costs at least one branch per target.
                assert!(stats.nodes >= p.num_targets as u64, "case {i}: {stats:?}");
            }
        }
    }

    #[test]
    fn learned_search_is_deterministic() {
        // Dense-conflict instance: enough refutation to learn clauses.
        let mut p = BindingProblem::new(5, 100, vec![vec![12]; 18]).with_maxtb(5);
        for t in 0..17 {
            p = p.with_conflict(t, t + 1);
        }
        let limits = learned_limits(7);
        let (a, sa) = p.find_feasible_stats(&limits).unwrap();
        let (b, sb) = p.find_feasible_stats(&limits).unwrap();
        assert_eq!(a.is_some(), b.is_some());
        assert_eq!(sa, sb, "stats must be a pure function of (problem, limits)");
    }

    #[test]
    fn infeasible_proof_with_learning() {
        // 24 unit targets, maxtb 4, 5 buses → 20 slots < 24 targets.
        let p = BindingProblem::new(5, 100, vec![vec![1]; 24]).with_maxtb(4);
        let (verdict, _) = p.find_feasible_stats(&learned_limits(0)).unwrap();
        assert_eq!(verdict, None);
    }

    #[test]
    fn budget_exhaustion_reports_budget() {
        let p = BindingProblem::new(6, 100, vec![vec![14]; 30]).with_maxtb(6);
        // 30 targets: a witness needs ≥ 30 branches and exhaustion far
        // more, so 10 nodes cannot reach a definitive answer.
        let limits = SolveLimits::nodes(10)
            .with_search(SearchLevel::Learned)
            .with_learned_seed(1);
        match p.find_feasible_stats(&limits) {
            Err(e) => assert_eq!(e.limit, 10),
            Ok((verdict, stats)) => panic!(
                "expected budget exhaustion, got verdict {:?} with {:?}",
                verdict.map(|_| "feasible"),
                stats
            ),
        }
    }
}
