//! The pre-refactor **dense-matrix reference solver**, kept verbatim.
//!
//! Before the bitset [`stbus_traffic::ConflictGraph`] refactor, the exact
//! binding search stored conflicts as an `n × n` `Vec<bool>` and vetted
//! every candidate bus by rescanning its member list. This module
//! preserves that implementation — same target ordering, same candidate
//! enumeration, same symmetry breaking — for two jobs:
//!
//! * **equivalence testing**: the word-parallel solver in
//!   [`crate::binding`] must return *bit-identical* bindings (the
//!   `solver_equivalence` suite and the binding unit tests assert it);
//! * **benchmarking**: the `phase3` criterion bench measures the bitset
//!   solver against this baseline in the same run, so the speedup claim is
//!   always measured, never remembered.
//!
//! One deliberate divergence: node-budget *accounting*. This reference
//! charges every candidate bus against [`SolveLimits::max_nodes`] before
//! vetoing it (the pre-refactor behaviour); the bitset solver filters
//! conflict/`maxtb`-vetoed candidates before they reach the budget.
//! Bit-identical equivalence therefore holds whenever **both** searches
//! complete within the budget — under a budget tight enough to interrupt
//! one of them, the bitset solver may finish where this reference reports
//! [`NodeLimitExceeded`].
//!
//! Production code should never call into this module.

// The loops mirror the pre-refactor code verbatim; iterator forms would
// change exactly the code this module exists to preserve.
#![allow(clippy::needless_range_loop)]

use crate::binding::{Binding, BindingProblem, NodeLimitExceeded, SolveLimits};

/// Dense mirror of a [`BindingProblem`]'s conflict relation plus the
/// pre-refactor search state.
struct DenseSearch<'p> {
    problem: &'p BindingProblem,
    /// Row-major symmetric `n × n` boolean conflict matrix.
    conflicts: Vec<bool>,
}

impl<'p> DenseSearch<'p> {
    fn new(problem: &'p BindingProblem) -> Self {
        let n = problem.num_targets();
        let mut conflicts = vec![false; n * n];
        for (i, j) in problem.conflict_pairs() {
            conflicts[i * n + j] = true;
            conflicts[j * n + i] = true;
        }
        Self { problem, conflicts }
    }

    fn conflicts(&self, i: usize, j: usize) -> bool {
        self.conflicts[i * self.problem.num_targets() + j]
    }

    /// The pre-refactor DFS: identical branching order to
    /// [`BindingProblem::find_feasible`]/[`BindingProblem::optimize`], but
    /// with the dense matrix and O(|members|) conflict rescans.
    fn search(
        &self,
        limits: &SolveLimits,
        incumbent_bound: Option<u64>,
    ) -> Result<Option<Binding>, NodeLimitExceeded> {
        let problem = self.problem;
        let n = problem.num_targets();
        if n == 0 {
            return Ok(Some(Binding::from_assignment(Vec::new())));
        }

        let mut order: Vec<usize> = (0..n).collect();
        let key = |t: usize| {
            let max_d = (0..problem.num_windows())
                .map(|m| problem.demand(t, m))
                .max()
                .unwrap_or(0);
            let total: u64 = (0..problem.num_windows())
                .map(|m| problem.demand(t, m))
                .sum();
            let degree = (0..n).filter(|&u| self.conflicts(t, u)).count();
            (max_d, degree as u64, total)
        };
        order.sort_by_key(|&t| std::cmp::Reverse(key(t)));

        let sparse: Vec<Vec<(usize, u64)>> = (0..n)
            .map(|t| {
                (0..problem.num_windows())
                    .filter(|&m| problem.demand(t, m) > 0)
                    .map(|m| (m, problem.demand(t, m)))
                    .collect()
            })
            .collect();

        let mut used = vec![vec![0u64; problem.num_windows()]; problem.num_buses()];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); problem.num_buses()];
        let mut bus_overlap = vec![0u64; problem.num_buses()];

        let mut nodes = 0u64;
        let mut best: Option<Binding> = None;
        let mut bound = incumbent_bound;
        let optimizing = incumbent_bound.is_some();

        #[allow(clippy::too_many_arguments)] // explicit search state, one hop deep
        fn dfs(
            search: &DenseSearch<'_>,
            order: &[usize],
            sparse: &[Vec<(usize, u64)>],
            used: &mut [Vec<u64>],
            members: &mut [Vec<usize>],
            bus_overlap: &mut [u64],
            depth: usize,
            nodes: &mut u64,
            limits: &SolveLimits,
            bound: &mut Option<u64>,
            optimizing: bool,
            best: &mut Option<Binding>,
            assignment: &mut Vec<usize>,
        ) -> Result<bool, NodeLimitExceeded> {
            let problem = search.problem;
            if depth == order.len() {
                let max_ov = bus_overlap.iter().copied().max().unwrap_or(0);
                let mut a = vec![0usize; order.len()];
                for (d, &t) in order.iter().enumerate() {
                    a[t] = assignment[d];
                }
                let binding = Binding::from_assignment_with_overlap(a, max_ov);
                if optimizing {
                    *bound = Some(max_ov);
                    *best = Some(binding);
                    return Ok(false);
                }
                *best = Some(binding);
                return Ok(true);
            }
            let t = order[depth];
            let mut tried_empty = false;
            let mut candidates: Vec<(u64, usize)> = Vec::with_capacity(problem.num_buses());
            for k in 0..problem.num_buses() {
                if members[k].is_empty() {
                    if tried_empty {
                        continue;
                    }
                    tried_empty = true;
                }
                let added: u64 = members[k].iter().map(|&u| problem.overlap(t, u)).sum();
                candidates.push((added, k));
            }
            if optimizing {
                candidates.sort_by_key(|&(added, _)| added);
            }
            for (added, k) in candidates {
                *nodes += 1;
                if *nodes > limits.max_nodes {
                    return Err(NodeLimitExceeded {
                        limit: limits.max_nodes,
                    });
                }
                if members[k].len() >= problem.maxtb() {
                    continue;
                }
                if members[k].iter().any(|&u| search.conflicts(t, u)) {
                    continue;
                }
                if let Some(b) = *bound {
                    if bus_overlap[k] + added >= b {
                        continue;
                    }
                }
                let fits = sparse[t]
                    .iter()
                    .all(|&(m, d)| used[k][m] + d <= problem.capacity(m));
                if !fits {
                    continue;
                }
                for &(m, d) in &sparse[t] {
                    used[k][m] += d;
                }
                members[k].push(t);
                bus_overlap[k] += added;
                assignment.push(k);

                let done = dfs(
                    search,
                    order,
                    sparse,
                    used,
                    members,
                    bus_overlap,
                    depth + 1,
                    nodes,
                    limits,
                    bound,
                    optimizing,
                    best,
                    assignment,
                )?;

                assignment.pop();
                bus_overlap[k] -= added;
                members[k].pop();
                for &(m, d) in &sparse[t] {
                    used[k][m] -= d;
                }
                if done {
                    return Ok(true);
                }
            }
            Ok(false)
        }

        let mut assignment = Vec::with_capacity(n);
        dfs(
            self,
            &order,
            &sparse,
            &mut used,
            &mut members,
            &mut bus_overlap,
            0,
            &mut nodes,
            limits,
            &mut bound,
            optimizing,
            &mut best,
            &mut assignment,
        )?;
        Ok(best)
    }
}

/// Dense-matrix reference for [`BindingProblem::find_feasible`].
///
/// # Errors
///
/// [`NodeLimitExceeded`] when the search budget runs out before a
/// definitive answer.
pub fn find_feasible_dense(
    problem: &BindingProblem,
    limits: &SolveLimits,
) -> Result<Option<Binding>, NodeLimitExceeded> {
    DenseSearch::new(problem).search(limits, None)
}

/// Dense-matrix reference for [`BindingProblem::optimize`].
///
/// # Errors
///
/// [`NodeLimitExceeded`] when the search budget runs out before optimality
/// is proven.
pub fn optimize_dense(
    problem: &BindingProblem,
    limits: &SolveLimits,
) -> Result<Option<Binding>, NodeLimitExceeded> {
    let search = DenseSearch::new(problem);
    let seed = search.search(limits, None)?;
    match seed {
        None => Ok(None),
        Some(feasible) => {
            let best = search.search(limits, Some(feasible.max_bus_overlap()))?;
            Ok(Some(best.unwrap_or(feasible)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> SolveLimits {
        SolveLimits::default()
    }

    /// Deterministic pseudo-random instances: the bitset solver and the
    /// dense reference must agree bit for bit, in both modes.
    #[test]
    fn bitset_solver_is_bit_identical_to_dense_reference() {
        let mut state = 0xC0FF_EE00_1234_5678u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..25 {
            let n = 3 + (rand() % 6) as usize;
            let buses = 2 + (rand() % 3) as usize;
            let demands: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..3).map(|_| rand() % 50).collect())
                .collect();
            let mut p = BindingProblem::new(buses, 100, demands);
            for i in 0..n {
                for j in (i + 1)..n {
                    if rand() % 4 == 0 {
                        p.add_conflict(i, j);
                    }
                }
            }
            let values: Vec<u64> = (0..n * n).map(|_| rand() % 30).collect();
            p.set_overlaps(|i, j| values[i * n + j]);

            let feas_bitset = p.find_feasible(&limits()).unwrap();
            let feas_dense = find_feasible_dense(&p, &limits()).unwrap();
            assert_eq!(feas_bitset, feas_dense, "case {case}: feasibility");

            let opt_bitset = p.optimize(&limits()).unwrap();
            let opt_dense = optimize_dense(&p, &limits()).unwrap();
            assert_eq!(opt_bitset, opt_dense, "case {case}: optimisation");
        }
    }

    /// Pruned (`Standard`) and unpruned searches are both bit-identical
    /// to the dense reference: the per-node lower bounds may only cut
    /// subtrees without feasible leaves, so the first feasible leaf and
    /// the optimal incumbent are untouched.
    #[test]
    fn pruned_solver_is_bit_identical_to_dense_reference() {
        use crate::bounds::PruningLevel;
        let mut state = 0xBEEF_CAFE_0918_2736u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..25 {
            let n = 3 + (rand() % 6) as usize;
            let buses = 2 + (rand() % 3) as usize;
            let demands: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..3).map(|_| rand() % 60).collect())
                .collect();
            let mut p =
                BindingProblem::new(buses, 100, demands).with_maxtb(1 + (rand() % 4) as usize);
            for i in 0..n {
                for j in (i + 1)..n {
                    if rand() % 3 == 0 {
                        p.add_conflict(i, j);
                    }
                }
            }
            let values: Vec<u64> = (0..n * n).map(|_| rand() % 30).collect();
            p.set_overlaps(|i, j| values[i * n + j]);

            let dense_feas = find_feasible_dense(&p, &limits()).unwrap();
            let dense_opt = optimize_dense(&p, &limits()).unwrap();
            for pruning in [PruningLevel::Off, PruningLevel::Standard] {
                let l = limits().with_pruning(pruning);
                assert_eq!(
                    p.find_feasible(&l).unwrap(),
                    dense_feas,
                    "case {case} [{pruning}]: feasibility"
                );
                assert_eq!(
                    p.optimize(&l).unwrap(),
                    dense_opt,
                    "case {case} [{pruning}]: optimisation"
                );
            }
        }
    }

    /// Workload-derived instances (raw paper-suite traces through the
    /// window analysis): the bitset solver, pruned and unpruned, stays
    /// bit-identical to the dense reference on realistic conflict and
    /// demand structure — the in-crate successor of the retired
    /// workspace-level dense equivalence suite.
    #[test]
    fn workload_instances_match_dense_reference() {
        use crate::bounds::PruningLevel;
        use stbus_traffic::{workloads, ConflictGraph, WindowStats};

        for app in workloads::paper_suite(0xDA7E_2005) {
            let stats = WindowStats::analyze(&app.trace, 1_000);
            let n = stats.num_targets();
            if n == 0 {
                continue;
            }
            let demands: Vec<Vec<u64>> = (0..n).map(|t| stats.demand_row(t).to_vec()).collect();
            let capacities: Vec<u64> = (0..stats.num_windows())
                .map(|m| stats.window_len(m))
                .collect();
            // Two conflict densities (the aggressive and conservative ends
            // of the paper's threshold range) crossed with two `maxtb`
            // caps, over the sizes the phase-3 binary search visits first
            // **plus** the full crossbar `n` — the size where optimisation
            // revisits equal-objective ties and ordering bugs would hide.
            for (threshold, maxtb) in [(0.15, 4), (0.50, 4), (0.15, 3)] {
                let conflicts = ConflictGraph::from_stats(&stats, threshold);
                let lb = conflicts.greedy_coloring_bound().max(1);
                let sizes = (lb..=(lb + 3).min(n)).chain((lb + 3 < n).then_some(n));
                for buses in sizes {
                    let mut p =
                        BindingProblem::with_capacities(buses, capacities.clone(), demands.clone())
                            .with_maxtb(maxtb)
                            .with_conflict_graph(conflicts.clone());
                    p.set_overlaps(|i, j| stats.overlap_matrix().get(i, j));
                    let dense_feas = find_feasible_dense(&p, &limits()).unwrap();
                    let dense_opt = optimize_dense(&p, &limits()).unwrap();
                    for pruning in [PruningLevel::Off, PruningLevel::Standard] {
                        let l = limits().with_pruning(pruning);
                        assert_eq!(
                            p.find_feasible(&l).unwrap(),
                            dense_feas,
                            "{}@{buses} θ={threshold} maxtb={maxtb} [{pruning}]: feasibility",
                            app.name()
                        );
                        assert_eq!(
                            p.optimize(&l).unwrap(),
                            dense_opt,
                            "{}@{buses} θ={threshold} maxtb={maxtb} [{pruning}]: optimisation",
                            app.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dense_reference_handles_edges() {
        let empty = BindingProblem::new(2, 100, Vec::new());
        assert!(find_feasible_dense(&empty, &limits()).unwrap().is_some());

        let infeasible = BindingProblem::new(1, 100, vec![vec![60], vec![50]]);
        assert_eq!(find_feasible_dense(&infeasible, &limits()).unwrap(), None);
        assert_eq!(optimize_dense(&infeasible, &limits()).unwrap(), None);

        let tiny_budget = BindingProblem::new(4, 100, vec![vec![26]; 12]);
        let err =
            find_feasible_dense(&tiny_budget, &SolveLimits::nodes(3)).expect_err("should exceed");
        assert_eq!(err.limit, 3);
    }
}
