//! Linear model description: variables, expressions, constraints and
//! objective.
//!
//! The model layer is deliberately small — just enough to express the
//! paper's Eq. (3)–(9) and the `maxov` objective — but it is a plain
//! general-purpose 0/1 + continuous LP/MILP description, independent of
//! the crossbar domain.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based index of the variable in its model.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Kind and bounds of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VarKind {
    /// Binary 0/1 variable.
    Binary,
    /// Continuous variable with inclusive bounds (`ub` may be infinite).
    Continuous {
        /// Lower bound.
        lb: f64,
        /// Upper bound (`f64::INFINITY` for unbounded).
        ub: f64,
    },
}

/// A linear expression `Σ coefᵢ·xᵢ + constant`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coef · var` and returns `self` (builder style).
    #[must_use]
    pub fn term(mut self, var: VarId, coef: f64) -> Self {
        self.add_term(var, coef);
        self
    }

    /// Adds `coef · var` in place, merging duplicate variables.
    pub fn add_term(&mut self, var: VarId, coef: f64) {
        if coef == 0.0 {
            return;
        }
        if let Some(t) = self.terms.iter_mut().find(|(v, _)| *v == var) {
            t.1 += coef;
        } else {
            self.terms.push((var, coef));
        }
    }

    /// Adds a constant offset and returns `self`.
    #[must_use]
    pub fn plus(mut self, constant: f64) -> Self {
        self.constant += constant;
        self
    }

    /// The terms of the expression.
    #[must_use]
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// The constant offset.
    #[must_use]
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Evaluates the expression under an assignment (indexed by variable).
    #[must_use]
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.index()])
                .sum::<f64>()
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(v, c) in &self.terms {
            if first {
                write!(f, "{c}·x{}", v.index())?;
                first = false;
            } else {
                write!(f, " + {c}·x{}", v.index())?;
            }
        }
        if self.constant != 0.0 || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Eq => "=",
            Cmp::Ge => ">=",
        })
    }
}

/// One linear constraint `expr cmp rhs` (the expression's constant is
/// folded into the right-hand side at solve time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// A MILP/LP model under construction.
///
/// ```
/// use stbus_milp::{Model, LinExpr, Cmp, Sense};
///
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.binary_var("x");
/// let y = m.continuous_var("y", 0.0, 10.0);
/// m.constrain(LinExpr::new().term(x, 3.0).term(y, 1.0), Cmp::Ge, 4.0);
/// m.set_objective(LinExpr::new().term(x, 5.0).term(y, 1.0));
/// assert_eq!(m.num_vars(), 2);
/// assert_eq!(m.num_constraints(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    sense: Sense,
    kinds: Vec<VarKind>,
    names: Vec<String>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
}

impl Model {
    /// Creates an empty model with the given optimisation sense.
    #[must_use]
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            kinds: Vec::new(),
            names: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
        }
    }

    /// Adds a binary variable.
    pub fn binary_var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.kinds.len());
        self.kinds.push(VarKind::Binary);
        self.names.push(name.into());
        id
    }

    /// Adds a continuous variable with bounds `[lb, ub]`.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or `lb` is not finite.
    pub fn continuous_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        assert!(lb.is_finite(), "lower bound must be finite");
        assert!(lb <= ub, "inverted bounds [{lb}, {ub}]");
        let id = VarId(self.kinds.len());
        self.kinds.push(VarKind::Continuous { lb, ub });
        self.names.push(name.into());
        id
    }

    /// Adds a constraint.
    pub fn constrain(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) {
        self.constraints.push(Constraint { expr, cmp, rhs });
    }

    /// Sets the objective expression (empty = pure feasibility problem).
    pub fn set_objective(&mut self, expr: LinExpr) {
        self.objective = expr;
    }

    /// The optimisation sense.
    #[must_use]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// The objective expression.
    #[must_use]
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.kinds.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Kind of a variable.
    #[must_use]
    pub fn kind(&self, var: VarId) -> VarKind {
        self.kinds[var.index()]
    }

    /// Name of a variable.
    #[must_use]
    pub fn name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// All constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Ids of the integer (binary) variables.
    #[must_use]
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| matches!(k, VarKind::Binary))
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Effective bounds of a variable (binaries are `[0, 1]`).
    #[must_use]
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        match self.kinds[var.index()] {
            VarKind::Binary => (0.0, 1.0),
            VarKind::Continuous { lb, ub } => (lb, ub),
        }
    }

    /// Checks whether the given point satisfies every constraint and bound
    /// to within `tol`.
    #[must_use]
    pub fn is_feasible_point(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.num_vars() {
            return false;
        }
        for (i, kind) in self.kinds.iter().enumerate() {
            let v = values[i];
            let (lb, ub) = match *kind {
                VarKind::Binary => (0.0, 1.0),
                VarKind::Continuous { lb, ub } => (lb, ub),
            };
            if v < lb - tol || v > ub + tol {
                return false;
            }
            if matches!(kind, VarKind::Binary) && (v - v.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(values);
            match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_merges_duplicate_terms() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let e = LinExpr::new().term(x, 2.0).term(x, 3.0);
        assert_eq!(e.terms().len(), 1);
        assert_eq!(e.terms()[0].1, 5.0);
    }

    #[test]
    fn expr_eval() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        let e = LinExpr::new().term(x, 2.0).term(y, -1.0).plus(4.0);
        assert_eq!(e.eval(&[1.0, 3.0]), 3.0);
    }

    #[test]
    fn zero_coefficient_dropped() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let e = LinExpr::new().term(x, 0.0);
        assert!(e.terms().is_empty());
    }

    #[test]
    fn model_bookkeeping() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.binary_var("x");
        let y = m.continuous_var("y", -1.0, 5.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.name(x), "x");
        assert_eq!(m.bounds(x), (0.0, 1.0));
        assert_eq!(m.bounds(y), (-1.0, 5.0));
        assert_eq!(m.integer_vars(), vec![x]);
        assert_eq!(m.sense(), Sense::Maximize);
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn inverted_bounds_panic() {
        let mut m = Model::new(Sense::Minimize);
        let _ = m.continuous_var("y", 5.0, 1.0);
    }

    #[test]
    fn feasible_point_check() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 1.0);
        assert!(m.is_feasible_point(&[1.0, 0.0], 1e-9));
        assert!(!m.is_feasible_point(&[1.0, 1.0], 1e-9));
        assert!(!m.is_feasible_point(&[0.5, 0.0], 1e-9)); // fractional binary
        assert!(!m.is_feasible_point(&[1.0], 1e-9)); // wrong arity
    }

    #[test]
    fn display_expr() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let e = LinExpr::new().term(x, 2.0).plus(1.0);
        assert_eq!(e.to_string(), "2·x0 + 1");
        assert_eq!(LinExpr::new().to_string(), "0");
    }

    #[test]
    fn cmp_display() {
        assert_eq!(Cmp::Le.to_string(), "<=");
        assert_eq!(Cmp::Eq.to_string(), "=");
        assert_eq!(Cmp::Ge.to_string(), ">=");
    }
}
