//! Per-node lower bounds for the exact binding search — the classic
//! branch-and-bound pruning lever from the MILP literature the paper
//! builds on.
//!
//! At every node of the DFS in [`crate::binding`] some targets are bound
//! to buses and the rest are *unbound*. A [`LowerBound`] looks at that
//! partial state and returns an **admissible** lower bound on the number
//! of buses any feasible completion needs; a value above the problem's
//! bus count is a certificate that the subtree contains no feasible leaf
//! and can be cut. Admissibility is the whole contract: a prune may only
//! remove subtrees that cannot contain a feasible leaf, so feasibility
//! answers and infeasibility proofs are unchanged by construction (the
//! `bound_admissibility` property suite enforces this against the
//! unpruned search).
//!
//! Two bounds ship, combined as their `max` by [`CombinedBound`]:
//!
//! * [`CliqueCoverBound`] — a greedy clique grown over the conflict
//!   subgraph induced by the unbound targets (word-parallel, reusing the
//!   [`ConflictGraph`](stbus_traffic::ConflictGraph) adjacency rows).
//!   Every clique member needs its own bus, so the clique size is a
//!   lower bound; on top of that, every unbound target must have at
//!   least one *usable* bus left (not full, not conflicting with the
//!   bus's members, enough total slack), and the clique members must
//!   find pairwise-distinct usable buses — a pigeonhole (Hall) violation
//!   certifies the subtree infeasible outright.
//! * [`BandwidthPackingBound`] — the ceiling of each critical window's
//!   total demand over its capacity (the root bandwidth bound), refined
//!   per node by a slack-fragmentation test: bus capacity smaller than
//!   the smallest remaining demand chunk in a window can never absorb
//!   any of that window's remaining demand, so if the usable free
//!   capacity falls below the remaining demand the subtree is infeasible.
//!
//! The DFS maintains the inputs ([`PruneContext`]) incrementally;
//! [`NodeState`] rebuilds the same inputs from scratch for a partial
//! assignment, which is what the audited search mode and the generic
//! MILP node cut ([`crate::branch_bound::NodeCut`]) use. The audit mode
//! ([`crate::binding::BindingProblem::find_feasible_audited`]) asserts at
//! every depth that the incremental state — and therefore the incremental
//! bound — equals the from-scratch recomputation.

use crate::binding::BindingProblem;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use stbus_traffic::TargetSet;

/// How many of the busiest windows the bandwidth-packing bound examines
/// per node. The bound stays admissible at any value; beyond a handful of
/// windows the extra scans cost more than the subtrees they cut.
pub(crate) const CRITICAL_WINDOWS: usize = 4;

/// How aggressively the exact binding search prunes with per-node lower
/// bounds.
///
/// * [`PruningLevel::Off`] — the plain DFS (the pre-pruning behaviour).
/// * [`PruningLevel::Standard`] — the default: [`CombinedBound`] is
///   evaluated at every node and subtrees it certifies infeasible are
///   cut. Feasibility verdicts, infeasibility proofs, probe logs and the
///   returned bindings are **bit-identical** to `Off` whenever the
///   unpruned search completes within its node budget (a prune only cuts
///   subtrees without feasible leaves, so the first feasible leaf — and
///   every incumbent improvement in optimisation mode — is unchanged).
///   Under a starved budget the pruned search can only *answer more
///   often*; it never answers differently.
/// * [`PruningLevel::Aggressive`] — opt-in: everything `Standard` does,
///   plus best-fit candidate ordering in feasibility mode (tightest
///   min-slack bus first). This changes which feasible leaf is found
///   first, so feasibility **verdicts** and probe logs still match, but
///   the returned binding — and, through the optimisation seed, the
///   equal-objective incumbent `optimize` returns — may legitimately
///   differ (the equal-objective-revisit gotcha first caught by the
///   retired dense equivalence battery). Levels that claim bit-identity
///   are `Off` and `Standard` only.
///
/// Orthogonal to the pruning level, `SearchLevel` in
/// [`crate::binding`] picks the search *engine* under these bounds — its
/// `Learned` level carries the same Aggressive-flavoured contract
/// (identical verdicts, bindings may differ), so the full knob matrix is
/// `{Off, Standard, Aggressive} × {standard, learned}` and bit-identity
/// is claimed only by `{Off, Standard} × standard`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PruningLevel {
    /// No per-node bounds: the plain DFS.
    Off,
    /// Admissible per-node bounds; bit-identical to `Off` within budget.
    #[default]
    Standard,
    /// `Standard` plus best-fit ordering; verdict-identical, bindings may
    /// differ.
    Aggressive,
}

impl PruningLevel {
    /// Whether this level guarantees bit-identical answers to the
    /// unpruned search (within the node budget).
    #[must_use]
    pub fn claims_bit_identity(self) -> bool {
        !matches!(self, PruningLevel::Aggressive)
    }
}

impl fmt::Display for PruningLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruningLevel::Off => write!(f, "off"),
            PruningLevel::Standard => write!(f, "standard"),
            PruningLevel::Aggressive => write!(f, "aggressive"),
        }
    }
}

impl FromStr for PruningLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(PruningLevel::Off),
            "standard" => Ok(PruningLevel::Standard),
            "aggressive" => Ok(PruningLevel::Aggressive),
            other => Err(format!(
                "unknown pruning level `{other}` (expected off|standard|aggressive)"
            )),
        }
    }
}

/// The partial search state a [`LowerBound`] reads: which targets remain
/// unbound and what the buses already carry. The DFS maintains every
/// field incrementally; [`NodeState`] materialises the same view from
/// scratch.
pub struct PruneContext<'a> {
    /// The problem being solved.
    pub problem: &'a BindingProblem,
    /// The deterministic branching order
    /// ([`BindingProblem::branching_order`]); bounds follow it so the
    /// incremental and from-scratch computations agree exactly.
    pub order: &'a [usize],
    /// The windows the bandwidth bound examines (busiest first).
    pub critical_windows: &'a [usize],
    /// Per-target total demand across all windows.
    pub target_total: &'a [u64],
    /// Targets not yet bound to a bus.
    pub unbound: &'a TargetSet,
    /// Per-bus member bitsets as one flat word slice, [`mask_words`]
    /// words per bus (bus `k` owns
    /// `bus_masks[k * mask_words..(k + 1) * mask_words]`).
    ///
    /// [`mask_words`]: PruneContext::mask_words
    pub bus_masks: &'a [u64],
    /// Words per bus in [`bus_masks`](PruneContext::bus_masks).
    pub mask_words: usize,
    /// Per-bus member counts.
    pub bus_len: &'a [usize],
    /// Per-bus per-window consumed capacity as one flat slice,
    /// `problem.num_windows()` entries per bus.
    pub used: &'a [u64],
    /// Per-bus total slack `Σ_m (cap(m) − used(k,m))`.
    pub total_slack: &'a [u64],
    /// Per-bus minimum window slack `min_m (cap(m) − used(k,m))` — the
    /// O(1) accept fast path of the usability test.
    pub min_slack: &'a [u64],
    /// Remaining (unbound) demand per window.
    pub rem_window: &'a [u64],
    /// Per-target peak window demand.
    pub peak: &'a [u64],
    /// Per-target sparse demand lists `(window, demand)` with `demand > 0`.
    pub sparse: &'a [Vec<(usize, u64)>],
    /// DFS-maintained usability matrix, `[t * num_buses + k]`, valid for
    /// the **unbound** rows: `Some` when the search keeps
    /// [`usable_in`] incrementally up to date (a placement on bus `k`
    /// only invalidates column `k`, so the DFS recomputes one column per
    /// push instead of every bound pass recomputing the full matrix).
    /// Bound values are identical either way — the matrix entries are by
    /// construction the same predicate — so bit-identity is preserved;
    /// the audited search asserts exactly that. Hypothetical propagation
    /// states ([`CombinedBound`]'s closure/shaving) carry `None` and
    /// compute directly against their own mutated copies.
    pub usable_matrix: Option<&'a [bool]>,
}

impl PruneContext<'_> {
    /// Whether target `t` could still be placed on bus `k` in **some**
    /// completion — the over-approximation of usability every certificate
    /// in this module rests on. Rejections are all *certain*: the bus is
    /// at its `maxtb` cap, `t` conflicts with a member, or `t` alone
    /// already overflows one of the bus's windows (O(1) accept when `t`'s
    /// peak demand fits the bus's minimum slack; the sparse window scan
    /// runs only in the ambiguous band, exactly like the DFS's own
    /// capacity check).
    #[must_use]
    fn usable(&self, t: usize, k: usize) -> bool {
        if let Some(matrix) = self.usable_matrix {
            return matrix[t * self.problem.num_buses() + k];
        }
        usable_in(
            self.problem,
            self.target_total,
            self.peak,
            self.sparse,
            self.bus_masks,
            self.mask_words,
            self.bus_len,
            self.used,
            self.total_slack,
            self.min_slack,
            t,
            k,
        )
    }
}

/// The shared usability test over explicit flat state slices — the same
/// logic for the live [`PruneContext`], for the hypothetical state of the
/// forced-assignment propagation, and for the DFS's incremental
/// usability-matrix columns (which must agree with it bit for bit).
#[allow(clippy::too_many_arguments)] // explicit state view, three call sites
#[must_use]
pub(crate) fn usable_in(
    problem: &BindingProblem,
    target_total: &[u64],
    peak: &[u64],
    sparse: &[Vec<(usize, u64)>],
    bus_masks: &[u64],
    mask_words: usize,
    bus_len: &[usize],
    used: &[u64],
    total_slack: &[u64],
    min_slack: &[u64],
    t: usize,
    k: usize,
) -> bool {
    let windows = problem.num_windows();
    if bus_len[k] >= problem.maxtb()
        || target_total[t] > total_slack[k]
        || problem
            .conflict_graph()
            .conflicts_with_words(t, &bus_masks[k * mask_words..(k + 1) * mask_words])
    {
        return false;
    }
    peak[t] <= min_slack[k]
        || sparse[t]
            .iter()
            .all(|&(m, d)| used[k * windows + m] + d <= problem.capacity(m))
}

/// An admissible per-node lower bound on the bus count.
///
/// Implementations take `&mut self` so they can reuse scratch buffers
/// across the millions of nodes a search visits; the result must be a
/// pure function of the [`PruneContext`].
pub trait LowerBound {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;

    /// A lower bound on the number of buses **any feasible completion**
    /// of the partial state needs. Returning more than
    /// `ctx.problem.num_buses()` certifies the subtree infeasible.
    ///
    /// Admissibility contract: if a feasible completion exists, the
    /// returned value must not exceed `ctx.problem.num_buses()`; at the
    /// root it must not exceed the true minimum feasible bus count.
    fn buses_needed(&mut self, ctx: &PruneContext<'_>) -> usize;
}

/// Greedy clique-cover bound over the **incompatibility** subgraph
/// induced by the unbound targets, with a usable-bus pigeonhole check.
///
/// Two targets are *incompatible* when they conflict (Eq. 2/7) **or**
/// their joint demand overflows some window's capacity — either way no
/// feasible binding ever co-locates them, so a clique of pairwise
/// incompatible targets needs pairwise-distinct buses. The capacity edges
/// are what lifts this bound past the plain conflict clique on
/// bandwidth-bound instances (the 48-target cliff of the size sweep): the
/// conflict clique tops out at the root coloring bound the binary search
/// already starts from, while joint-overflow pairs certify much larger
/// cliques.
///
/// Three certificates: the clique size itself, a dead unbound target (no
/// usable bus — the singleton clique of the cover), and a Hall violation
/// (fewer distinct usable buses than clique members).
#[derive(Debug, Default)]
pub struct CliqueCoverBound {
    /// Clique candidate words (intersection of accepted rows ∩ unbound).
    cand: Vec<u64>,
    /// Bus-index bitset: union of the clique members' usable buses.
    union_words: Vec<u64>,
    /// Row-major adjacency words of the static incompatibility relation
    /// (conflict ∪ pairwise window overflow), built lazily per problem.
    incompat: Vec<u64>,
    /// Identity of the problem `incompat` was built for — address plus
    /// aggregate shape (target/bus/window counts, `maxtb`, capacity and
    /// demand sums), so a bound instance reused across problems rebuilds
    /// instead of applying stale rows.
    built_for: Option<(usize, usize, usize, usize, usize, u64, u64)>,
    /// Debug-only deep fingerprint of the problem content the cache was
    /// built from — the staleness tripwire behind
    /// [`assert_cache_fresh`].
    #[cfg(debug_assertions)]
    built_fingerprint: u64,
}

/// The identity key the incompatibility cache is validated against on
/// every call — cheap (O(targets + windows)) and collision-proof for
/// every realistic reuse pattern (a fresh problem at the same address
/// would additionally need identical counts, `maxtb`, capacity sum and
/// total demand to alias).
fn incompat_key(ctx: &PruneContext<'_>) -> (usize, usize, usize, usize, usize, u64, u64) {
    let problem = ctx.problem;
    (
        std::ptr::from_ref(problem) as usize,
        problem.num_targets(),
        problem.num_buses(),
        problem.num_windows(),
        problem.maxtb(),
        (0..problem.num_windows())
            .map(|m| problem.capacity(m))
            .sum(),
        ctx.target_total.iter().sum(),
    )
}

/// Debug-only deep fingerprint of the problem content the per-problem
/// caches depend on: every `(target, window)` demand, every window
/// capacity, `maxtb`, and the per-target conflict degrees. The
/// [`incompat_key`] identity check is address + aggregate sums, which by
/// convention suffices — a [`BindingProblem`] is immutable between
/// probes — but a sum-preserving in-place mutation (swap two demands,
/// shuffle capacities) would silently reuse stale incompatibility rows
/// and demand caches. FNV-1a, O(targets × windows), debug builds only.
#[cfg(debug_assertions)]
fn deep_fingerprint(problem: &BindingProblem) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |value: u64| {
        hash ^= value;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    mix(problem.maxtb() as u64);
    for m in 0..problem.num_windows() {
        mix(problem.capacity(m));
    }
    for t in 0..problem.num_targets() {
        mix(problem.conflict_graph().degree(t) as u64);
        for m in 0..problem.num_windows() {
            mix(problem.demand(t, m));
        }
    }
    hash
}

/// Debug assertion that a cache-identity hit really corresponds to an
/// unchanged problem: any mutation of a [`BindingProblem`]'s windows,
/// demands or conflicts between probes must change the cache key, not
/// just keep the aggregate sums. Release builds compile this away.
#[cfg(debug_assertions)]
fn assert_cache_fresh(problem: &BindingProblem, built: u64, cache: &str) {
    debug_assert_eq!(
        built,
        deep_fingerprint(problem),
        "{cache} cache-identity hit on a mutated problem: the \
         (incompat_key, critical_windows) key matched but the problem's \
         windows/demands/conflicts changed — mutations between probes \
         must bump the cache key (rebuild the BindingProblem instead of \
         editing it in place)"
    );
}

impl CliqueCoverBound {
    /// Builds the static pairwise incompatibility rows for `problem`.
    /// Pure function of the problem, so incremental and from-scratch
    /// bound evaluations agree by construction.
    fn build_incompat(&mut self, ctx: &PruneContext<'_>) {
        let problem = ctx.problem;
        let n = problem.num_targets();
        let words = ctx.unbound.words().len();
        self.incompat = vec![0u64; n * words];
        for i in 0..n {
            for j in (i + 1)..n {
                let clash = problem.conflicts(i, j)
                    || (0..problem.num_windows())
                        .any(|m| problem.demand(i, m) + problem.demand(j, m) > problem.capacity(m));
                if clash {
                    self.incompat[i * words + j / 64] |= 1u64 << (j % 64);
                    self.incompat[j * words + i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        self.built_for = Some(incompat_key(ctx));
        #[cfg(debug_assertions)]
        {
            self.built_fingerprint = deep_fingerprint(problem);
        }
    }
}

impl LowerBound for CliqueCoverBound {
    fn name(&self) -> &'static str {
        "clique-cover"
    }

    fn buses_needed(&mut self, ctx: &PruneContext<'_>) -> usize {
        if self.built_for != Some(incompat_key(ctx)) {
            self.build_incompat(ctx);
        } else {
            #[cfg(debug_assertions)]
            assert_cache_fresh(ctx.problem, self.built_fingerprint, "incompatibility");
        }
        self.buses_needed_cached(ctx)
    }
}

impl CliqueCoverBound {
    /// [`LowerBound::buses_needed`] minus the cache-identity check — the
    /// escalation's probe loop calls this against contexts derived from
    /// an already-validated one (same problem, same shape), where
    /// re-deriving the O(targets + windows) key per probe is pure
    /// overhead.
    fn buses_needed_cached(&mut self, ctx: &PruneContext<'_>) -> usize {
        let problem = ctx.problem;
        let buses = problem.num_buses();
        if problem.num_targets() == 0 || ctx.unbound.is_empty() {
            return 0;
        }
        let words = ctx.unbound.words().len();

        self.cand.clear();
        self.cand.extend_from_slice(ctx.unbound.words());
        self.union_words.clear();
        self.union_words.resize(buses.div_ceil(64), 0);

        let mut clique_len = 0usize;
        for &v in ctx.order {
            if !ctx.unbound.contains(v) {
                continue;
            }
            let in_clique = self.cand[v / 64] >> (v % 64) & 1 == 1;
            // Every unbound target needs at least one usable bus; clique
            // members additionally contribute theirs to the Hall union.
            // When the context carries a usability matrix the row is a
            // contiguous bool slice — scan it directly instead of paying
            // the per-(target, bus) dispatch.
            let mut any = false;
            if let Some(matrix) = ctx.usable_matrix {
                let row = &matrix[v * buses..(v + 1) * buses];
                if in_clique {
                    for (k, &u) in row.iter().enumerate() {
                        if u {
                            any = true;
                            self.union_words[k / 64] |= 1u64 << (k % 64);
                        }
                    }
                } else {
                    any = row.contains(&true);
                }
            } else {
                for k in 0..buses {
                    if !ctx.usable(v, k) {
                        continue;
                    }
                    any = true;
                    if !in_clique {
                        break;
                    }
                    self.union_words[k / 64] |= 1u64 << (k % 64);
                }
            }
            if !any {
                // A dead target: no completion can place it anywhere.
                return buses + 1;
            }
            if in_clique {
                clique_len += 1;
                let row = &self.incompat[v * words..(v + 1) * words];
                for (c, &r) in self.cand.iter_mut().zip(row) {
                    *c &= r;
                }
            }
        }
        let usable_union: usize = self
            .union_words
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        if usable_union < clique_len {
            // Pigeonhole: the clique needs pairwise-distinct buses drawn
            // from a union smaller than itself.
            return buses + 1;
        }
        clique_len
    }
}

/// Why a node was refuted, expressed as the set of **placements** the
/// refutation rests on — the seed of a learned nogood clause (see
/// [`crate::binding::learned`]).
///
/// Soundness contract: for [`Refutation::Assignments(set)`], *any*
/// assignment (partial or complete) in which every target of `set` sits
/// on its current bus admits no feasible completion — the certificate's
/// rejections are all monotone in the member sets (a conflict, an
/// overflow or a full bus stays one when more targets are placed), so
/// the refutation transfers to every superset of the recorded
/// placements, not just the node it was extracted at.
/// [`Refutation::Global`] is a refutation resting on *no* placements:
/// the instance is infeasible outright.
#[derive(Debug)]
pub(crate) enum Refutation {
    /// Infeasible regardless of any assignment (e.g. a static
    /// incompatibility clique larger than the bus count, or a dead
    /// target whose every rejection is static).
    Global,
    /// The refutation rests on exactly the recorded targets' current
    /// placements.
    Assignments(TargetSet),
}

impl CliqueCoverBound {
    /// Re-derives this bound's refutation of `ctx` — which must be a
    /// state the bound refutes, i.e. `buses_needed(ctx) > num_buses` —
    /// and names the *responsible placements*: the minimal-ish set of
    /// bound targets whose bus memberships the certificate actually
    /// used. Returns `None` when the clique bound does **not** refute
    /// the state (the caller's refutation came from another certificate
    /// and must fall back to the full prefix).
    ///
    /// Reason extraction per certificate:
    ///
    /// * **dead target** `v` — for every bus, the members that make it
    ///   unusable for `v` ([`unusable_reason`]);
    /// * **Hall violation** — for every clique member and every bus
    ///   outside its usable set, the blocking members (usable sets can
    ///   only shrink under more placements, so the union stays small);
    /// * **clique larger than the bus count** — the incompatibility
    ///   relation is static, so this refutes the instance globally.
    ///
    /// This re-runs the greedy pass (same deterministic order, same
    /// clique) with bookkeeping the hot path never pays — it is only
    /// called on refuted nodes, where the subtree is already cut.
    pub(crate) fn explain(&mut self, ctx: &PruneContext<'_>) -> Option<Refutation> {
        let problem = ctx.problem;
        let buses = problem.num_buses();
        if problem.num_targets() == 0 || ctx.unbound.is_empty() {
            return None;
        }
        if self.built_for != Some(incompat_key(ctx)) {
            self.build_incompat(ctx);
        }
        let words = ctx.unbound.words().len();
        let mut cand = ctx.unbound.words().to_vec();
        let mut union_words = vec![0u64; buses.div_ceil(64)];
        let mut clique: Vec<usize> = Vec::new();
        for &v in ctx.order {
            if !ctx.unbound.contains(v) {
                continue;
            }
            let in_clique = cand[v / 64] >> (v % 64) & 1 == 1;
            let mut any = false;
            for k in 0..buses {
                if !ctx.usable(v, k) {
                    continue;
                }
                any = true;
                if !in_clique {
                    break;
                }
                union_words[k / 64] |= 1u64 << (k % 64);
            }
            if !any {
                let mut reason = TargetSet::empty(problem.num_targets());
                for k in 0..buses {
                    unusable_reason(ctx, v, k, &mut reason);
                }
                return Some(refutation_from(reason));
            }
            if in_clique {
                clique.push(v);
                let row = &self.incompat[v * words..(v + 1) * words];
                for (c, &r) in cand.iter_mut().zip(row) {
                    *c &= r;
                }
            }
        }
        if clique.len() > buses {
            return Some(Refutation::Global);
        }
        let usable_union: usize = union_words.iter().map(|w| w.count_ones() as usize).sum();
        if usable_union < clique.len() {
            let mut reason = TargetSet::empty(problem.num_targets());
            for &v in &clique {
                for k in 0..buses {
                    if !ctx.usable(v, k) {
                        unusable_reason(ctx, v, k, &mut reason);
                    }
                }
            }
            return Some(refutation_from(reason));
        }
        None
    }
}

/// Wraps an extracted reason set: an empty reason means the refutation
/// held with no placements at all — a global infeasibility certificate.
fn refutation_from(reason: TargetSet) -> Refutation {
    if reason.is_empty() {
        Refutation::Global
    } else {
        Refutation::Assignments(reason)
    }
}

/// Records the bound targets responsible for `t` being unusable on bus
/// `k` — the reason side of every [`Refutation`] certificate. Mirrors
/// the certain rejections of [`usable_in`], attributed to members:
///
/// * a **conflict** with a member needs only that one member;
/// * a full bus (`maxtb`), exhausted total slack, or a window overflow
///   is implied by the bus's *entire* member set (their demands and
///   seats reproduce the rejection in any superset state);
/// * an **empty** bus rejecting `t` does so statically (the target's own
///   demand against pristine capacity) — no placements to record.
pub(crate) fn unusable_reason(ctx: &PruneContext<'_>, t: usize, k: usize, reason: &mut TargetSet) {
    let problem = ctx.problem;
    let words = ctx.mask_words;
    let mask = &ctx.bus_masks[k * words..(k + 1) * words];
    if ctx.bus_len[k] == 0 {
        return;
    }
    if problem.conflict_graph().conflicts_with_words(t, mask) {
        for (w, &wordv) in mask.iter().enumerate() {
            let mut word = wordv;
            while word != 0 {
                let j = w * 64 + word.trailing_zeros() as usize;
                if problem.conflicts(t, j) {
                    reason.insert(j);
                    return;
                }
                word &= word - 1;
            }
        }
        unreachable!("conflicts_with_words certified a conflicting member");
    }
    for (w, &wordv) in mask.iter().enumerate() {
        let mut word = wordv;
        while word != 0 {
            let j = w * 64 + word.trailing_zeros() as usize;
            reason.insert(j);
            word &= word - 1;
        }
    }
}

/// Bandwidth-packing bound: per critical window, the ceiling of total
/// demand over capacity, refined per node by a **conflict-aware
/// fragmentation** test and a **fractional-routing (max-flow)**
/// certificate on the remaining demand.
///
/// Two per-node refinements, both certain:
///
/// 1. *Absorb cap*: bus `k` can absorb at most
///    `min(free(k,m), Σ d(t,m) over unbound targets usable on k)` more
///    window-`m` cycles — its slack, capped by the demand that can
///    actually reach it given the conflict masks, the `maxtb` cap and
///    `t`'s own window fits. Remaining demand above the sum of those
///    caps is a contradiction.
/// 2. *Flow*: when the absorb test passes but is tight (within 2× of
///    the remaining demand), the remaining demand is routed fractionally
///    through the bipartite usability graph (source → target, capacity
///    `d(t,m)`; target → usable bus; bus → sink, capacity `free(k,m)`)
///    with a small Dinic pass. A max flow below the remaining demand
///    certifies infeasibility for **every subset** of targets at once —
///    the Hall-with-demands generalisation the per-bus cap cannot see.
///    The integral problem only ever routes less than the fractional
///    relaxation, so the certificate is admissible.
///
/// The plain slack margin (`Σ free ≥ rem`) is invariant under placement
/// and never fires; these two are what bite deep in the search, where
/// the bus masks are conflict-saturated and the leftover demand
/// concentrates on a handful of compatible buses.
#[derive(Debug, Default)]
pub struct BandwidthPackingBound {
    /// Per-(critical-window, bus) absorbable-demand accumulator.
    absorb: Vec<u64>,
    /// Per-(critical-window, bus) count of active usable targets.
    absorb_count: Vec<u32>,
    /// Per-(target-slot, bus) usability matrix of the current pass,
    /// indexed by unbound-iteration position.
    usable: Vec<bool>,
    /// Unbound targets of the current pass (flow node order).
    targets: Vec<usize>,
    /// Ascending remaining demands of the window under examination.
    chunk: Vec<u64>,
    /// Smallest usable-bus count over the unbound targets in the last
    /// pass — the trigger for [`CombinedBound`]'s forced-assignment
    /// propagation (≤ 1) and shaving (≤ 2).
    min_usable: usize,
    /// Dinic scratch.
    flow: DinicScratch,
    /// Residual per-bus free capacity of the greedy routing pre-pass.
    greedy_free: Vec<u64>,
    /// Per-target critical-window demands, flat
    /// `[t * crit.len() + ci]` over **all** targets — a pure function of
    /// the problem, cached so the per-node pass reads a contiguous row
    /// instead of chasing the nested demand vectors per (target, bus,
    /// window) triple.
    crit_demand: Vec<u64>,
    /// Per critical window: the positive demands of all targets as
    /// `(demand, target)`, ascending. The chunk-count certificate
    /// filters this by unbound membership — the same multiset the old
    /// per-node gather-and-sort produced, without the sort.
    win_sorted: Vec<Vec<(u64, u32)>>,
    /// Identity of the problem the demand cache was built for (same
    /// shape as the clique bound's incompatibility key) plus the
    /// critical-window list it was sliced along.
    built_for: Option<(usize, usize, usize, usize, usize, u64, u64)>,
    built_crit: Vec<usize>,
    /// Debug-only deep fingerprint of the problem content the demand
    /// cache was built from (see [`assert_cache_fresh`]).
    #[cfg(debug_assertions)]
    built_fingerprint: u64,
}

impl BandwidthPackingBound {
    /// Builds the per-problem demand cache. Pure function of the
    /// problem and the critical-window list, so incremental and
    /// from-scratch bound evaluations agree by construction.
    fn build_cache(&mut self, ctx: &PruneContext<'_>) {
        let problem = ctx.problem;
        let n = problem.num_targets();
        let crit = ctx.critical_windows;
        let cl = crit.len();
        self.crit_demand.clear();
        self.crit_demand.reserve(n * cl);
        for t in 0..n {
            for &m in crit {
                self.crit_demand.push(problem.demand(t, m));
            }
        }
        self.win_sorted.clear();
        self.win_sorted.resize(cl, Vec::new());
        for (ci, list) in self.win_sorted.iter_mut().enumerate() {
            list.extend((0..n).filter_map(|t| {
                let d = self.crit_demand[t * cl + ci];
                (d > 0).then_some((d, t as u32))
            }));
            list.sort_unstable();
        }
        self.built_for = Some(incompat_key(ctx));
        self.built_crit.clear();
        self.built_crit.extend_from_slice(crit);
        #[cfg(debug_assertions)]
        {
            self.built_fingerprint = deep_fingerprint(problem);
        }
    }
}

impl LowerBound for BandwidthPackingBound {
    fn name(&self) -> &'static str {
        "bandwidth-packing"
    }

    fn buses_needed(&mut self, ctx: &PruneContext<'_>) -> usize {
        if !ctx.critical_windows.is_empty() {
            if self.built_for != Some(incompat_key(ctx)) || self.built_crit != ctx.critical_windows
            {
                self.build_cache(ctx);
            } else {
                #[cfg(debug_assertions)]
                assert_cache_fresh(
                    ctx.problem,
                    self.built_fingerprint,
                    "critical-window demand",
                );
            }
        }
        self.buses_needed_cached(ctx)
    }
}

impl BandwidthPackingBound {
    /// [`LowerBound::buses_needed`] minus the cache-identity check — see
    /// [`CliqueCoverBound::buses_needed_cached`]; the escalation's probe
    /// loop runs against contexts sharing the validated problem.
    fn buses_needed_cached(&mut self, ctx: &PruneContext<'_>) -> usize {
        let problem = ctx.problem;
        let buses = problem.num_buses();
        let crit = ctx.critical_windows;
        if crit.is_empty() {
            return 0;
        }
        let cl = crit.len();
        // One usability pass accumulating, per critical window and bus,
        // the unbound demand that could still land there.
        self.targets.clear();
        self.targets.extend(ctx.unbound.iter());
        self.absorb.clear();
        self.absorb.resize(cl * buses, 0);
        self.absorb_count.clear();
        self.absorb_count.resize(cl * buses, 0);
        self.usable.clear();
        self.usable.resize(self.targets.len() * buses, false);
        self.min_usable = usize::MAX;
        for (ti, &t) in self.targets.iter().enumerate() {
            let mut usable_buses = 0usize;
            let td = &self.crit_demand[t * cl..(t + 1) * cl];
            if let Some(matrix) = ctx.usable_matrix {
                // Matrix-backed context: memcpy the row and scan it as a
                // contiguous slice instead of per-(target, bus) dispatch.
                let row = &matrix[t * buses..(t + 1) * buses];
                self.usable[ti * buses..(ti + 1) * buses].copy_from_slice(row);
                for (k, &u) in row.iter().enumerate() {
                    if !u {
                        continue;
                    }
                    usable_buses += 1;
                    for (ci, &d) in td.iter().enumerate() {
                        self.absorb[ci * buses + k] += d;
                        self.absorb_count[ci * buses + k] += u32::from(d > 0);
                    }
                }
            } else {
                for k in 0..buses {
                    if !ctx.usable(t, k) {
                        continue;
                    }
                    usable_buses += 1;
                    self.usable[ti * buses + k] = true;
                    for (ci, &d) in td.iter().enumerate() {
                        self.absorb[ci * buses + k] += d;
                        self.absorb_count[ci * buses + k] += u32::from(d > 0);
                    }
                }
            }
            self.min_usable = self.min_usable.min(usable_buses);
        }
        let maxtb = problem.maxtb();
        let windows = problem.num_windows();
        let mut needed = 0usize;
        for (ci, &m) in crit.iter().enumerate() {
            let cap = problem.capacity(m);
            let rem = ctx.rem_window[m];
            let mut used_sum = 0u64;
            let mut absorbable = 0u64;
            for k in 0..buses {
                let used = ctx.used[k * windows + m];
                used_sum += used;
                // Saturating for overloaded partials from the MILP cut;
                // the DFS never overloads, so this is exact there.
                let free = cap.saturating_sub(used);
                absorbable += free.min(self.absorb[ci * buses + k]);
            }
            if rem > absorbable {
                // The remaining demand cannot reach enough free capacity,
                // however it is distributed.
                return buses + 1;
            }
            if rem > 0 {
                // Chunk-count certificate: demands are indivisible, so bus
                // `k` hosts at most `min(seats, active usable targets,
                // max number of the *smallest* remaining chunks fitting
                // its free capacity)` of the window's active targets —
                // the integral cardinality view the fractional tests
                // cannot see (free capacity of 1.5 chunks hosts 1).
                // Filtering the pre-sorted all-targets list by unbound
                // membership yields the same ascending multiset the old
                // per-node gather-and-sort produced.
                self.chunk.clear();
                self.chunk.extend(
                    self.win_sorted[ci]
                        .iter()
                        .filter(|&&(_, t)| ctx.unbound.contains(t as usize))
                        .map(|&(d, _)| d),
                );
                let active = self.chunk.len();
                // Ascending prefix sums in place: chunk[p] = smallest
                // p+1 chunks combined.
                for i in 1..self.chunk.len() {
                    self.chunk[i] += self.chunk[i - 1];
                }
                let mut hostable = 0usize;
                for k in 0..buses {
                    let free = cap.saturating_sub(ctx.used[k * windows + m]);
                    let fit = self.chunk.partition_point(|&sum| sum <= free);
                    let seats = maxtb.saturating_sub(ctx.bus_len[k]);
                    hostable += fit
                        .min(seats)
                        .min(self.absorb_count[ci * buses + k] as usize);
                }
                if hostable < active {
                    return buses + 1;
                }
                // Tight but not contradictory: ask the exact fractional
                // routing. (The gate keeps the Dinic pass off the easy
                // nodes; it is a pure function of the state, so
                // incremental and from-scratch evaluations still agree.)
                if absorbable < rem.saturating_mul(2) {
                    // Greedy fractional pre-pass: spread each demand over
                    // its usable buses' residual free capacity. Success
                    // exhibits a full routing, i.e. the max flow reaches
                    // `rem` — exactly what the certificate asks — so the
                    // Dinic pass runs only on the (rare) greedy failures,
                    // where bad early placements may have wasted capacity
                    // a real flow would reroute. Pure shortcut: the
                    // certificate's outcome is unchanged either way.
                    self.greedy_free.clear();
                    self.greedy_free
                        .extend((0..buses).map(|k| cap.saturating_sub(ctx.used[k * windows + m])));
                    let mut greedy_ok = true;
                    'greedy: for (ti, &t) in self.targets.iter().enumerate() {
                        let mut d = self.crit_demand[t * cl + ci];
                        if d == 0 {
                            continue;
                        }
                        for k in 0..buses {
                            if self.usable[ti * buses + k] {
                                let take = d.min(self.greedy_free[k]);
                                self.greedy_free[k] -= take;
                                d -= take;
                                if d == 0 {
                                    continue 'greedy;
                                }
                            }
                        }
                        greedy_ok = false;
                        break;
                    }
                    if !greedy_ok {
                        let crit_demand = &self.crit_demand;
                        let routed = self.flow.max_flow(
                            &self.targets,
                            &self.usable,
                            buses,
                            |t| crit_demand[t * cl + ci],
                            |k| cap.saturating_sub(ctx.used[k * windows + m]),
                            rem,
                        );
                        if routed < rem {
                            return buses + 1;
                        }
                    }
                }
            }
            // Total window demand is invariant under placement, so this
            // is the root bandwidth bound — kept for the `max` with the
            // clique bound and for standalone (root) bound queries.
            let total = used_sum + rem;
            needed = needed.max(usize::try_from(total.div_ceil(cap)).unwrap_or(usize::MAX));
        }
        needed
    }
}

/// Reusable Dinic max-flow scratch over the bipartite
/// targets × buses usability graph. Node layout: `0` = source,
/// `1..=T` targets, `T+1..=T+B` buses, `T+B+1` = sink.
#[derive(Debug, Default)]
struct DinicScratch {
    /// Edge heads.
    to: Vec<u32>,
    /// Residual capacities (paired edges at `i ^ 1`).
    cap: Vec<u64>,
    /// Adjacency heads per node into `to`/`cap` (CSR-free linked list).
    next: Vec<i32>,
    head: Vec<i32>,
    level: Vec<i32>,
    iter: Vec<i32>,
    queue: Vec<u32>,
}

impl DinicScratch {
    fn add_edge(&mut self, a: usize, b: usize, cap: u64) {
        self.to.push(b as u32);
        self.cap.push(cap);
        self.next.push(self.head[a]);
        self.head[a] = (self.to.len() - 1) as i32;
        self.to.push(a as u32);
        self.cap.push(0);
        self.next.push(self.head[b]);
        self.head[b] = (self.to.len() - 1) as i32;
    }

    /// Max flow from source to sink, stopping early once `target_flow`
    /// is reached (the certificate only needs to know whether the full
    /// remaining demand routes).
    fn max_flow(
        &mut self,
        targets: &[usize],
        usable: &[bool],
        buses: usize,
        demand: impl Fn(usize) -> u64,
        free: impl Fn(usize) -> u64,
        target_flow: u64,
    ) -> u64 {
        let t_count = targets.len();
        let nodes = t_count + buses + 2;
        let (source, sink) = (0usize, nodes - 1);
        self.to.clear();
        self.cap.clear();
        self.next.clear();
        self.head.clear();
        self.head.resize(nodes, -1);
        for (ti, &t) in targets.iter().enumerate() {
            let d = demand(t);
            if d == 0 {
                continue;
            }
            self.add_edge(source, 1 + ti, d);
            for k in 0..buses {
                if usable[ti * buses + k] {
                    self.add_edge(1 + ti, 1 + t_count + k, d);
                }
            }
        }
        for k in 0..buses {
            let f = free(k);
            if f > 0 {
                self.add_edge(1 + t_count + k, sink, f);
            }
        }

        let mut flow = 0u64;
        while flow < target_flow {
            // BFS level graph.
            self.level.clear();
            self.level.resize(nodes, -1);
            self.level[source] = 0;
            self.queue.clear();
            self.queue.push(source as u32);
            let mut qi = 0;
            while qi < self.queue.len() {
                let v = self.queue[qi] as usize;
                qi += 1;
                let mut e = self.head[v];
                while e >= 0 {
                    let eu = e as usize;
                    let w = self.to[eu] as usize;
                    if self.cap[eu] > 0 && self.level[w] < 0 {
                        self.level[w] = self.level[v] + 1;
                        self.queue.push(w as u32);
                    }
                    e = self.next[eu];
                }
            }
            if self.level[sink] < 0 {
                break;
            }
            // DFS blocking flow.
            self.iter.clear();
            self.iter.extend_from_slice(&self.head);
            loop {
                let pushed = self.dfs(source, sink, u64::MAX);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
                if flow >= target_flow {
                    break;
                }
            }
        }
        flow
    }

    fn dfs(&mut self, v: usize, sink: usize, limit: u64) -> u64 {
        if v == sink {
            return limit;
        }
        while self.iter[v] >= 0 {
            let e = self.iter[v] as usize;
            let w = self.to[e] as usize;
            if self.cap[e] > 0 && self.level[w] == self.level[v] + 1 {
                let pushed = self.dfs(w, sink, limit.min(self.cap[e]));
                if pushed > 0 {
                    self.cap[e] -= pushed;
                    self.cap[e ^ 1] += pushed;
                    return pushed;
                }
            }
            self.iter[v] = self.next[e];
        }
        0
    }
}

/// The production bound: `max` of [`CliqueCoverBound`] and
/// [`BandwidthPackingBound`], escalated by **forced-assignment
/// propagation and shaving** when the usability pass finds targets with
/// at most two usable buses.
///
/// Every rejection in the usability test is certain, so:
///
/// * a target with a *single* usable bus goes there in every feasible
///   completion — the closure commits such targets on a hypothetical
///   copy of the state and cascades to a fixpoint (commits shrink the
///   remaining usable sets, which can force further targets);
/// * a target with exactly *two* usable buses is **shaved**: each
///   placement is probed on a scratch copy, and a placement whose
///   closure (or packing certificate) reaches a contradiction is
///   refuted — both refuted means the subtree is infeasible, one
///   refuted means the other placement is forced and committed.
///
/// A target with no usable bus, at any point, certifies the subtree
/// infeasible, and both base bounds are re-evaluated on the maximally
/// propagated state. This is the machinery that cracks the deep thrash
/// of the scaled infeasibility proofs: at the phase transition the
/// remaining targets hold 1–3 usable buses each, and the contradiction
/// the plain per-node bounds only meet five levels deeper surfaces
/// under the closure and the probes immediately.
#[derive(Debug, Default)]
pub struct CombinedBound {
    clique: CliqueCoverBound,
    bandwidth: BandwidthPackingBound,
    base: Option<HypoState>,
    probe: Option<HypoState>,
    /// Scratch for the per-round shaving sweep order (the unbound set at
    /// the start of the round), reused across nodes.
    shave: Vec<usize>,
}

/// Shaving rounds are capped: each round is a full sweep over the
/// unbound targets with few usable buses, and each committed deduction
/// re-triggers the closure, so a handful of rounds reaches the useful
/// fixpoint; the cap only bounds the cost of pathological cascades. Both
/// caps are part of the (deterministic) bound definition.
const SHAVE_ROUNDS: usize = 4;

/// Targets with at most this many usable buses are shaved (each of
/// their placements probed for refutation).
const SHAVE_WIDTH: usize = 2;

/// Problem size below which the propagation/shaving escalation is
/// skipped: on paper-scale instances the plain bounds already keep the
/// search in the microsecond range and the hypothetical-state copies
/// would dominate the solve. A pure function of the problem, so the
/// incremental and from-scratch bound evaluations still agree; skipping
/// an escalation only weakens the bound, never its admissibility.
const PROPAGATION_MIN_TARGETS: usize = 16;

impl LowerBound for CombinedBound {
    fn name(&self) -> &'static str {
        "clique-cover+bandwidth"
    }

    fn buses_needed(&mut self, ctx: &PruneContext<'_>) -> usize {
        let buses = ctx.problem.num_buses();
        let infeasible = buses + 1;
        // Bandwidth first: its usability pass also records the smallest
        // usable-bus count, which gates the propagation below.
        let bw = self.bandwidth.buses_needed(ctx);
        if bw > buses {
            return bw;
        }
        let min_usable = self.bandwidth.min_usable;
        let cl = self.clique.buses_needed(ctx);
        if cl > buses {
            return cl;
        }
        let best = bw.max(cl);
        if min_usable <= SHAVE_WIDTH && ctx.problem.num_targets() >= PROPAGATION_MIN_TARGETS {
            return self.escalate(ctx, buses, infeasible, best);
        }
        best
    }
}

impl CombinedBound {
    /// Conflict-clause extraction for the learned search: delegates to
    /// the clique/Hall explainer regardless of which certificate
    /// refuted the node (the clique pass usually also refutes, and its
    /// reasons are the minimal ones). `None` means no cheap explanation
    /// — the caller falls back to the full-prefix reason.
    pub(crate) fn explain(&mut self, ctx: &PruneContext<'_>) -> Option<Refutation> {
        self.clique.explain(ctx)
    }

    /// Forced-assignment propagation and shaving on a hypothetical copy
    /// of the node state, re-running both certificates on the maximally
    /// propagated result.
    fn escalate(
        &mut self,
        ctx: &PruneContext<'_>,
        buses: usize,
        infeasible: usize,
        mut best: usize,
    ) -> usize {
        {
            // Closure of the forced (single-bus) targets.
            let base = match &mut self.base {
                Some(state) => {
                    state.load(ctx);
                    state
                }
                slot => slot.insert(HypoState::from_ctx(ctx)),
            };
            if !base.closure(ctx) {
                return infeasible;
            }
            // Shaving sweeps over the two-bus targets.
            for _ in 0..SHAVE_ROUNDS {
                let mut changed = false;
                self.shave.clear();
                self.shave.extend(base.unbound.iter());
                for &t in &self.shave {
                    if !base.unbound.contains(t) {
                        continue;
                    }
                    let (count, candidates) = base.usable_few(ctx, t);
                    if count == 0 {
                        return infeasible;
                    }
                    if count == 1 {
                        base.commit(ctx, t, candidates[0]);
                        if !base.closure(ctx) {
                            return infeasible;
                        }
                        changed = true;
                        continue;
                    }
                    if count > SHAVE_WIDTH {
                        continue;
                    }
                    let mut survivor = usize::MAX;
                    let mut survivors = 0usize;
                    for &k in &candidates[..count] {
                        if !refuted(
                            &mut self.probe,
                            base,
                            &mut self.bandwidth,
                            &mut self.clique,
                            ctx,
                            t,
                            k,
                        ) {
                            survivors += 1;
                            survivor = k;
                            if survivors > 1 {
                                break;
                            }
                        }
                    }
                    match survivors {
                        0 => return infeasible,
                        1 => {
                            base.commit(ctx, t, survivor);
                            if !base.closure(ctx) {
                                return infeasible;
                            }
                            changed = true;
                        }
                        _ => {}
                    }
                }
                if !changed {
                    break;
                }
            }
            // Both bounds again, on the maximally propagated state; their
            // values remain valid for this node because every commit was
            // forced (shared by all feasible completions).
            let pctx = base.context(ctx);
            let pbw = self.bandwidth.buses_needed_cached(&pctx);
            if pbw > buses {
                return pbw;
            }
            let pcl = self.clique.buses_needed_cached(&pctx);
            if pcl > buses {
                return pcl;
            }
            best = best.max(pbw).max(pcl);
        }
        best
    }
}

/// Probes the placement `t → k` on a scratch copy of `base`: returns
/// `true` when the closure or either packing/clique certificate refutes
/// it — no feasible completion of `base` places `t` on `k`.
fn refuted(
    probe_slot: &mut Option<HypoState>,
    base: &HypoState,
    bandwidth: &mut BandwidthPackingBound,
    clique: &mut CliqueCoverBound,
    ctx: &PruneContext<'_>,
    t: usize,
    k: usize,
) -> bool {
    let probe = match probe_slot {
        Some(state) => {
            state.copy_from(base);
            state
        }
        slot => slot.insert(base.clone()),
    };
    probe.commit(ctx, t, k);
    if !probe.closure(ctx) {
        return true;
    }
    let buses = ctx.problem.num_buses();
    let pctx = probe.context(ctx);
    // Clique first: it is the cheaper certificate and empirically the
    // one that refutes — the refutation is a plain OR of the two, so
    // short-circuit order is unobservable in the bound's value.
    clique.buses_needed_cached(&pctx) > buses || bandwidth.buses_needed_cached(&pctx) > buses
}

/// A hypothetical search state — an owned copy of the mutable
/// [`PruneContext`] slices, advanced by committing forced placements
/// during propagation and shaving. Masks and window usage are flat word
/// strides like the live context's, so reloading is a handful of
/// `memcpy`s instead of a per-bus pointer chase.
#[derive(Debug, Clone)]
struct HypoState {
    unbound: TargetSet,
    /// Flat per-bus member masks, `mask_words` words per bus.
    masks: Vec<u64>,
    mask_words: usize,
    lens: Vec<usize>,
    /// Flat per-bus window usage, `num_windows` entries per bus.
    used: Vec<u64>,
    total_slack: Vec<u64>,
    min_slack: Vec<u64>,
    rem_window: Vec<u64>,
    /// Own usability matrix, `[t * num_buses + k]`, valid for the
    /// unbound rows — seeded from the live context (a memcpy when the
    /// DFS maintains one) and refreshed one **column** per commit, since
    /// a placement on bus `k` only changes bus `k`'s mask, seats and
    /// slack. The closure and shaving sweeps read it O(1) per query
    /// instead of re-deriving [`usable_in`] per (target, bus) pair —
    /// entries equal the predicate by construction, so every certificate
    /// value is unchanged (the audited search asserts this).
    usable: Vec<bool>,
    /// Per-target count of set entries in the matrix row (valid for
    /// unbound rows), maintained by the same column refreshes. The
    /// closure's fixpoint sweep reads one count per target instead of a
    /// whole matrix row, and the shaving sweep skips wide targets O(1).
    usable_count: Vec<u32>,
    commits: Vec<(usize, usize)>,
}

impl HypoState {
    fn from_ctx(ctx: &PruneContext<'_>) -> Self {
        let mut state = Self {
            unbound: ctx.unbound.clone(),
            masks: ctx.bus_masks.to_vec(),
            mask_words: ctx.mask_words,
            lens: ctx.bus_len.to_vec(),
            used: ctx.used.to_vec(),
            total_slack: ctx.total_slack.to_vec(),
            min_slack: ctx.min_slack.to_vec(),
            rem_window: ctx.rem_window.to_vec(),
            usable: Vec::new(),
            usable_count: Vec::new(),
            commits: Vec::new(),
        };
        state.seed_usable(ctx);
        state
    }

    /// Fills the usability matrix for the freshly loaded state: a copy
    /// of the live matrix when the DFS maintains one, a from-scratch
    /// evaluation of the same predicate otherwise (MILP partials and the
    /// audit's rebuilt contexts) — identical entries either way.
    fn seed_usable(&mut self, ctx: &PruneContext<'_>) {
        let n = ctx.problem.num_targets();
        let buses = ctx.problem.num_buses();
        self.usable.clear();
        self.usable_count.clear();
        self.usable_count.resize(n, 0);
        if let Some(matrix) = ctx.usable_matrix {
            self.usable.extend_from_slice(matrix);
        } else {
            self.usable.resize(n * buses, false);
            for t in 0..n {
                if !self.unbound.contains(t) {
                    continue;
                }
                for k in 0..buses {
                    self.usable[t * buses + k] = usable_in(
                        ctx.problem,
                        ctx.target_total,
                        ctx.peak,
                        ctx.sparse,
                        &self.masks,
                        self.mask_words,
                        &self.lens,
                        &self.used,
                        &self.total_slack,
                        &self.min_slack,
                        t,
                        k,
                    );
                }
            }
        }
        for t in 0..n {
            if !self.unbound.contains(t) {
                continue;
            }
            self.usable_count[t] = self.usable[t * buses..(t + 1) * buses]
                .iter()
                .map(|&u| u32::from(u))
                .sum();
        }
    }

    /// Recomputes the matrix column of bus `k` over the unbound rows —
    /// the only entries a commit can change (bound rows are dead) —
    /// adjusting the row counts by the flips.
    fn refresh_bus(&mut self, ctx: &PruneContext<'_>, k: usize) {
        let buses = ctx.problem.num_buses();
        for t in 0..ctx.problem.num_targets() {
            if !self.unbound.contains(t) {
                continue;
            }
            let now = usable_in(
                ctx.problem,
                ctx.target_total,
                ctx.peak,
                ctx.sparse,
                &self.masks,
                self.mask_words,
                &self.lens,
                &self.used,
                &self.total_slack,
                &self.min_slack,
                t,
                k,
            );
            let was = &mut self.usable[t * buses + k];
            if *was != now {
                *was = now;
                if now {
                    self.usable_count[t] += 1;
                } else {
                    self.usable_count[t] -= 1;
                }
            }
        }
    }

    /// Reloads this scratch from a live context, reusing the allocations
    /// (this runs on every escalated DFS node — exactly the hot
    /// phase-transition searches).
    fn load(&mut self, ctx: &PruneContext<'_>) {
        self.unbound.clone_from(ctx.unbound);
        self.masks.clear();
        self.masks.extend_from_slice(ctx.bus_masks);
        self.mask_words = ctx.mask_words;
        self.lens.clear();
        self.lens.extend_from_slice(ctx.bus_len);
        self.used.clear();
        self.used.extend_from_slice(ctx.used);
        self.total_slack.clear();
        self.total_slack.extend_from_slice(ctx.total_slack);
        self.min_slack.clear();
        self.min_slack.extend_from_slice(ctx.min_slack);
        self.rem_window.clear();
        self.rem_window.extend_from_slice(ctx.rem_window);
        self.seed_usable(ctx);
    }

    /// Copies another hypothetical state, reusing allocations.
    fn copy_from(&mut self, other: &HypoState) {
        self.unbound.clone_from(&other.unbound);
        self.masks.clone_from(&other.masks);
        self.mask_words = other.mask_words;
        self.lens.clone_from(&other.lens);
        self.used.clone_from(&other.used);
        self.total_slack.clone_from(&other.total_slack);
        self.min_slack.clone_from(&other.min_slack);
        self.rem_window.clone_from(&other.rem_window);
        self.usable.clone_from(&other.usable);
        self.usable_count.clone_from(&other.usable_count);
    }

    fn usable(&self, ctx: &PruneContext<'_>, t: usize, k: usize) -> bool {
        self.usable[t * ctx.problem.num_buses() + k]
    }

    /// The usable-bus count of `t` (clamped just above [`SHAVE_WIDTH`])
    /// and its first [`SHAVE_WIDTH`] usable buses. The maintained row
    /// count answers the wide case in O(1); only narrow targets — the
    /// ones shaving actually probes — scan the matrix row for the buses.
    fn usable_few(&self, ctx: &PruneContext<'_>, t: usize) -> (usize, [usize; SHAVE_WIDTH]) {
        let real = self.usable_count[t] as usize;
        let mut few = [usize::MAX; SHAVE_WIDTH];
        if real > SHAVE_WIDTH {
            return (SHAVE_WIDTH + 1, few);
        }
        let buses = ctx.problem.num_buses();
        let row = &self.usable[t * buses..(t + 1) * buses];
        let mut count = 0usize;
        for (k, &u) in row.iter().enumerate() {
            if u {
                few[count] = k;
                count += 1;
                if count == real {
                    break;
                }
            }
        }
        (real, few)
    }

    /// Applies the forced placement `t → k` — the same bookkeeping as
    /// the DFS `apply` step.
    fn commit(&mut self, ctx: &PruneContext<'_>, t: usize, k: usize) {
        let problem = ctx.problem;
        let windows = problem.num_windows();
        self.masks[k * self.mask_words + t / 64] |= 1u64 << (t % 64);
        self.lens[k] += 1;
        let mut new_min = self.min_slack[k];
        for &(m, d) in &ctx.sparse[t] {
            self.used[k * windows + m] += d;
            self.rem_window[m] -= d;
            new_min = new_min.min(problem.capacity(m) - self.used[k * windows + m]);
        }
        self.min_slack[k] = new_min;
        self.total_slack[k] -= ctx.target_total[t];
        self.unbound.remove(t);
        // Only bus `k` changed; one column refresh keeps the matrix
        // exact for every later O(1) query of this propagation.
        self.refresh_bus(ctx, k);
    }

    /// Runs the forced-assignment closure to a fixpoint. Returns `false`
    /// on a contradiction (some target lost its last usable bus).
    fn closure(&mut self, ctx: &PruneContext<'_>) -> bool {
        let buses = ctx.problem.num_buses();
        loop {
            let mut commits = std::mem::take(&mut self.commits);
            commits.clear();
            let mut dead_target = false;
            {
                let state = &*self;
                for t in state.unbound.iter() {
                    // One maintained count per target; the matrix row is
                    // only scanned for the rare forced (count == 1) case.
                    let count = state.usable_count[t];
                    if count == 0 {
                        dead_target = true;
                        break;
                    }
                    if count == 1 {
                        let row = &state.usable[t * buses..(t + 1) * buses];
                        let only = row
                            .iter()
                            .position(|&u| u)
                            .expect("count == 1 row has a usable bus");
                        commits.push((t, only));
                    }
                }
            }
            let done = commits.is_empty();
            let mut contradiction = dead_target;
            if !contradiction {
                for &(t, k) in &commits {
                    // An earlier commit of this sweep may have consumed
                    // the last seat or slack — that is a contradiction,
                    // not a choice.
                    if !self.usable(ctx, t, k) {
                        contradiction = true;
                        break;
                    }
                    self.commit(ctx, t, k);
                }
            }
            self.commits = commits;
            if contradiction {
                return false;
            }
            if done {
                return true;
            }
        }
    }

    /// The [`PruneContext`] view over this state (static fields borrowed
    /// from the original context).
    fn context<'a>(&'a self, ctx: &PruneContext<'a>) -> PruneContext<'a> {
        PruneContext {
            problem: ctx.problem,
            order: ctx.order,
            critical_windows: ctx.critical_windows,
            target_total: ctx.target_total,
            unbound: &self.unbound,
            bus_masks: &self.masks,
            mask_words: self.mask_words,
            bus_len: &self.lens,
            used: &self.used,
            total_slack: &self.total_slack,
            min_slack: &self.min_slack,
            rem_window: &self.rem_window,
            peak: ctx.peak,
            sparse: ctx.sparse,
            // The state's own matrix — refreshed on every commit, so it
            // describes the propagated buses exactly.
            usable_matrix: Some(&self.usable),
        }
    }
}

/// The busiest windows (by total demand) — the ones the bandwidth bound
/// examines per node. Ties break toward lower indices; windows with no
/// demand are skipped.
pub(crate) fn critical_windows(column_demand: &[u64]) -> Vec<usize> {
    let mut windows: Vec<usize> = (0..column_demand.len())
        .filter(|&m| column_demand[m] > 0)
        .collect();
    windows.sort_by_key(|&m| (std::cmp::Reverse(column_demand[m]), m));
    windows.truncate(CRITICAL_WINDOWS);
    windows
}

/// Per-window total demand over all targets (the `rem_window` value of
/// the root state).
pub(crate) fn column_demand(problem: &BindingProblem) -> Vec<u64> {
    (0..problem.num_windows())
        .map(|m| {
            (0..problem.num_targets())
                .map(|t| problem.demand(t, m))
                .sum()
        })
        .collect()
}

/// A from-scratch materialisation of the [`PruneContext`] inputs for a
/// partial assignment — what the audited search compares its incremental
/// state against, what the generic-MILP node cut rebuilds per node, and
/// what tests use to query bounds at arbitrary depths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeState {
    pub(crate) order: Vec<usize>,
    pub(crate) critical: Vec<usize>,
    pub(crate) target_total: Vec<u64>,
    pub(crate) unbound: TargetSet,
    /// Flat per-bus member masks, [`NodeState::mask_words`] per bus —
    /// the same layout the DFS search arena keeps.
    pub(crate) masks: Vec<u64>,
    pub(crate) mask_words: usize,
    pub(crate) lens: Vec<usize>,
    /// Flat per-bus window usage, `num_windows` entries per bus.
    pub(crate) used: Vec<u64>,
    pub(crate) total_slack: Vec<u64>,
    pub(crate) min_slack: Vec<u64>,
    pub(crate) rem_window: Vec<u64>,
    pub(crate) peak: Vec<u64>,
    pub(crate) sparse: Vec<Vec<(usize, u64)>>,
}

impl NodeState {
    /// The root state: nothing bound, every bus empty.
    #[must_use]
    pub fn root(problem: &BindingProblem) -> Self {
        Self::from_partial(problem, &[])
    }

    /// The state after binding each `(target, bus)` pair of `bound`.
    ///
    /// The partial assignment is taken at face value (no feasibility
    /// check): the bounds stay admissible either way, because an
    /// infeasible partial state has no feasible completion to miss.
    ///
    /// # Panics
    ///
    /// Panics if a target or bus index is out of range, or a target is
    /// bound twice.
    #[must_use]
    pub fn from_partial(problem: &BindingProblem, bound: &[(usize, usize)]) -> Self {
        let n = problem.num_targets();
        let buses = problem.num_buses();
        let windows = problem.num_windows();
        let mut unbound = TargetSet::empty(n);
        for t in 0..n {
            unbound.insert(t);
        }
        let mask_words = unbound.words().len();
        let mut masks = vec![0u64; buses * mask_words];
        let mut lens = vec![0usize; buses];
        let mut used = vec![0u64; buses * windows];
        let mut rem_window = column_demand(problem);
        for &(t, k) in bound {
            assert!(t < n && k < buses, "partial binding index out of range");
            assert!(unbound.contains(t), "target {t} bound twice");
            unbound.remove(t);
            masks[k * mask_words + t / 64] |= 1u64 << (t % 64);
            lens[k] += 1;
            for (m, rem) in rem_window.iter_mut().enumerate() {
                let d = problem.demand(t, m);
                used[k * windows + m] += d;
                *rem -= d;
            }
        }
        let cap_total: u64 = (0..windows).map(|m| problem.capacity(m)).sum();
        // Saturating: a partial assignment handed in by the MILP node cut
        // may overload a bus (the LP has not rejected it yet); zero slack
        // is the right — and still admissible — reading of that state.
        let total_slack: Vec<u64> = (0..buses)
            .map(|k| {
                cap_total.saturating_sub(used[k * windows..(k + 1) * windows].iter().sum::<u64>())
            })
            .collect();
        let min_slack: Vec<u64> = (0..buses)
            .map(|k| {
                (0..windows)
                    .map(|m| problem.capacity(m).saturating_sub(used[k * windows + m]))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect();
        let target_total: Vec<u64> = (0..n)
            .map(|t| (0..windows).map(|m| problem.demand(t, m)).sum())
            .collect();
        let sparse: Vec<Vec<(usize, u64)>> = (0..n)
            .map(|t| {
                (0..windows)
                    .map(|m| (m, problem.demand(t, m)))
                    .filter(|&(_, d)| d > 0)
                    .collect()
            })
            .collect();
        let peak: Vec<u64> = sparse
            .iter()
            .map(|s| s.iter().map(|&(_, d)| d).max().unwrap_or(0))
            .collect();
        Self {
            order: problem.branching_order(),
            critical: critical_windows(&column_demand(problem)),
            target_total,
            unbound,
            masks,
            mask_words,
            lens,
            used,
            total_slack,
            min_slack,
            rem_window,
            peak,
            sparse,
        }
    }

    /// The [`PruneContext`] view over this state.
    #[must_use]
    pub fn context<'a>(&'a self, problem: &'a BindingProblem) -> PruneContext<'a> {
        PruneContext {
            problem,
            order: &self.order,
            critical_windows: &self.critical,
            target_total: &self.target_total,
            unbound: &self.unbound,
            bus_masks: &self.masks,
            mask_words: self.mask_words,
            bus_len: &self.lens,
            used: &self.used,
            total_slack: &self.total_slack,
            min_slack: &self.min_slack,
            rem_window: &self.rem_window,
            peak: &self.peak,
            sparse: &self.sparse,
            usable_matrix: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bound_all(problem: &BindingProblem, state: &NodeState) -> (usize, usize, usize) {
        let ctx = state.context(problem);
        (
            CliqueCoverBound::default().buses_needed(&ctx),
            BandwidthPackingBound::default().buses_needed(&ctx),
            CombinedBound::default().buses_needed(&ctx),
        )
    }

    #[test]
    fn triangle_clique_needs_three() {
        let p = BindingProblem::new(3, 100, vec![vec![1]; 3])
            .with_conflict(0, 1)
            .with_conflict(1, 2)
            .with_conflict(0, 2);
        let state = NodeState::root(&p);
        let (clique, _, combined) = bound_all(&p, &state);
        assert_eq!(clique, 3);
        assert_eq!(combined, 3);
    }

    #[test]
    fn bandwidth_root_bound_is_the_demand_ceiling() {
        // 3 targets × 60 cycles in one 100-cycle window → ceil(180/100)=2.
        let p = BindingProblem::new(3, 100, vec![vec![60]; 3]);
        let state = NodeState::root(&p);
        let (_, bw, combined) = bound_all(&p, &state);
        assert_eq!(bw, 2);
        assert!(combined >= 2);
    }

    #[test]
    fn dead_target_certifies_infeasible() {
        // Two buses; target 2 conflicts with both bound targets, so once
        // they occupy the two buses no usable bus remains for it.
        let p = BindingProblem::new(2, 100, vec![vec![10]; 3])
            .with_conflict(0, 2)
            .with_conflict(1, 2);
        let state = NodeState::from_partial(&p, &[(0, 0), (1, 1)]);
        let ctx = state.context(&p);
        assert!(CliqueCoverBound::default().buses_needed(&ctx) > p.num_buses());
    }

    #[test]
    fn hall_violation_certifies_infeasible() {
        // Targets 1 and 2 conflict (a 2-clique) and both conflict with
        // target 0, which sits on bus 0 of two buses: only bus 1 is
        // usable by either clique member — union 1 < clique 2.
        let p = BindingProblem::new(2, 100, vec![vec![10]; 3])
            .with_conflict(1, 2)
            .with_conflict(0, 1)
            .with_conflict(0, 2);
        let state = NodeState::from_partial(&p, &[(0, 0)]);
        let ctx = state.context(&p);
        assert!(CliqueCoverBound::default().buses_needed(&ctx) > p.num_buses());
    }

    #[test]
    fn fragmentation_certifies_infeasible() {
        // Two buses each already hold 70 of 100 in window 0; remaining
        // targets each demand 40 there (60 total free but no bus can
        // take a 40-chunk... actually 30 < 40 per bus): usable free
        // capacity is 0 < 80 remaining.
        let p = BindingProblem::new(2, 100, vec![vec![70], vec![70], vec![40], vec![40]]);
        let state = NodeState::from_partial(&p, &[(0, 0), (1, 1)]);
        let ctx = state.context(&p);
        assert!(BandwidthPackingBound::default().buses_needed(&ctx) > p.num_buses());
    }

    #[test]
    fn maxtb_full_bus_contributes_no_usable_capacity() {
        // Bus 0 is at maxtb=1 with plenty of slack; the remaining target
        // cannot use it, and bus 1 is too full for the 50-chunk.
        let p = BindingProblem::new(2, 100, vec![vec![10], vec![60], vec![50]]).with_maxtb(1);
        let state = NodeState::from_partial(&p, &[(0, 0), (1, 1)]);
        let ctx = state.context(&p);
        assert!(CombinedBound::default().buses_needed(&ctx) > p.num_buses());
    }

    #[test]
    fn empty_problem_bounds_are_zero() {
        let p = BindingProblem::new(2, 100, Vec::new());
        let state = NodeState::root(&p);
        let (clique, bw, combined) = bound_all(&p, &state);
        assert_eq!((clique, bw, combined), (0, 0, 0));
    }

    #[test]
    fn pruning_level_round_trips() {
        for (text, level) in [
            ("off", PruningLevel::Off),
            ("standard", PruningLevel::Standard),
            ("aggressive", PruningLevel::Aggressive),
        ] {
            assert_eq!(text.parse::<PruningLevel>().unwrap(), level);
            assert_eq!(level.to_string(), text);
        }
        assert!("max".parse::<PruningLevel>().is_err());
        assert_eq!(PruningLevel::default(), PruningLevel::Standard);
        assert!(PruningLevel::Standard.claims_bit_identity());
        assert!(!PruningLevel::Aggressive.claims_bit_identity());
    }

    #[test]
    fn critical_windows_pick_the_busiest() {
        assert_eq!(critical_windows(&[5, 0, 9, 9, 1, 7]), vec![2, 3, 5, 0]);
        assert_eq!(critical_windows(&[0, 0]), Vec::<usize>::new());
    }
}
