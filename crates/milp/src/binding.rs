//! Specialised exact solver for the crossbar binding problem.
//!
//! The paper's MILPs have a very particular structure: assign each target
//! to exactly one bus (Eq. 3) subject to per-window bus capacity (Eq. 4),
//! pairwise conflicts (Eq. 7) and a per-bus cardinality cap (Eq. 8); then
//! minimise the maximum summed pairwise overlap on any bus (Eq. 11).
//! That is bin packing with conflicts plus a min-max quadratic-ish
//! objective — ideal territory for a backtracking search with:
//!
//! * **per-window bandwidth propagation** — a candidate bus is rejected the
//!   moment any window would overflow `WS`, with incremental per-bus
//!   min/total slack giving O(1) accept and reject fast paths around the
//!   window scan;
//! * **word-parallel conflict forward-checking** — each bus keeps an
//!   incremental member bitset ([`stbus_traffic::TargetSet`]), so buses
//!   containing a conflicting target are ruled out with one `AND` pass of
//!   the candidate's [`stbus_traffic::ConflictGraph`] row instead of a
//!   member-list rescan;
//! * **bus symmetry breaking** — empty buses are interchangeable, so only
//!   the first one is branched on;
//! * **decreasing-demand target ordering** — the classic first-fail
//!   heuristic for packing problems;
//! * **incumbent pruning** in optimisation mode — a partial assignment
//!   whose max per-bus overlap already reaches the incumbent is cut.
//!
//! The search is exact: it proves infeasibility or optimality (subject to
//! the configurable node limit, which is reported honestly as an error
//! rather than silently returning a wrong answer).

use crate::bounds::{self, CombinedBound, LowerBound, NodeState, PruningLevel};
use serde::{Deserialize, Serialize};

pub mod learned;
use stbus_exec::CancelToken;
use stbus_traffic::{ConflictGraph, TargetSet};
use std::error::Error;
use std::fmt;

/// A previous solution offered as a starting point for an incremental
/// re-solve (see [`SolveLimits::warm_start`]).
///
/// The binding is the *previous* problem's answer; the new problem may
/// have a patched conflict graph, different demands, or even more targets
/// (a delta that appended some). [`BindingProblem::verify`] decides
/// whether it still holds — the solver never trusts the stale
/// [`WarmStart::objective`], it recomputes the objective against the
/// problem at hand.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmStart {
    /// The previous search's binding, index-compatible with the new
    /// problem whenever the delta only silenced/edited targets (appended
    /// targets make the arity differ, demoting the warm start to a
    /// value-ordering hint).
    pub binding: Binding,
    /// The objective the binding achieved on the *previous* problem.
    /// Informational: the solver recomputes the objective via
    /// [`BindingProblem::verify`] before using the binding as an
    /// incumbent, because the patched overlap matrix may value the same
    /// assignment differently.
    pub objective: u64,
}

impl WarmStart {
    /// Wraps a previous binding, recording its objective.
    #[must_use]
    pub fn new(binding: Binding) -> Self {
        let objective = binding.max_bus_overlap();
        Self { binding, objective }
    }
}

/// Which search engine answers feasibility queries.
///
/// A sibling knob to [`PruningLevel`], with the *Aggressive* flavour of
/// contract: every level proves the same feasibility verdicts whenever
/// both searches complete within the node budget, but the returned
/// bindings (and therefore probe logs downstream) may differ.
///
/// | Level      | Verdicts | Binding | Mechanism |
/// |------------|----------|---------|-----------|
/// | `Standard` | exact    | bit-identical to the frozen-order DFS | depth-first search in [`BindingProblem::branching_order`] |
/// | `Learned`  | exact    | may differ (first feasible leaf of a perturbed value order) | conflict-driven nogood learning + Luby restarts (see [`crate::learned`]) |
///
/// `Learned` applies to *feasibility* searches
/// ([`BindingProblem::find_feasible`] and friends — the MILP-1 probes
/// that dominate hard instances). The MILP-2 optimisation pass
/// ([`BindingProblem::optimize`]) always runs the standard improving
/// search: learning targets refutation-heavy feasibility landscapes, and
/// keeping optimisation on the standard path preserves its audited
/// bit-identity guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SearchLevel {
    /// The frozen-order DFS — the default, bit-identical reference.
    #[default]
    Standard,
    /// Conflict-driven nogood learning with restart perturbation.
    Learned,
}

impl SearchLevel {
    /// Whether this level guarantees bit-identical bindings to the
    /// reference search (not just identical verdicts).
    #[must_use]
    pub const fn claims_bit_identity(self) -> bool {
        matches!(self, SearchLevel::Standard)
    }
}

impl fmt::Display for SearchLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchLevel::Standard => write!(f, "standard"),
            SearchLevel::Learned => write!(f, "learned"),
        }
    }
}

impl std::str::FromStr for SearchLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "standard" => Ok(SearchLevel::Standard),
            "learned" => Ok(SearchLevel::Learned),
            other => Err(format!(
                "unknown search level `{other}` (expected standard|learned)"
            )),
        }
    }
}

/// Search effort limits and pruning policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveLimits {
    /// Maximum number of (target, bus) branch attempts. Candidates vetoed
    /// outright by the conflict mask or the `maxtb` cap are filtered
    /// before they reach the budget, so a given budget buys strictly more
    /// search than it did under the retired dense-matrix reference's
    /// accounting (which charged every candidate). Subtrees cut by
    /// the per-node lower bounds (see [`SolveLimits::pruning`]) never
    /// reach the budget either.
    pub max_nodes: u64,
    /// Per-node lower-bound pruning level. [`PruningLevel::Standard`]
    /// (the default) is bit-identical to [`PruningLevel::Off`] whenever
    /// the unpruned search completes within `max_nodes`; under a starved
    /// budget the pruned search can only answer *more* often, never
    /// differently. [`PruningLevel::Aggressive`] is opt-in: verdicts and
    /// probe logs still match, but returned bindings may differ.
    pub pruning: PruningLevel,
    /// Optional previous solution for incremental re-solves. Two effects,
    /// both gated on [`BindingProblem::verify`] against the *current*
    /// problem:
    ///
    /// * **Instant incumbent.** When the previous binding still verifies,
    ///   [`BindingProblem::find_feasible`] returns it without search
    ///   (zero nodes) and [`BindingProblem::optimize`] skips the
    ///   incumbent-seeding pass, seeding the improving search with the
    ///   recomputed objective instead.
    /// * **Value ordering.** When it does not verify (or only partially
    ///   applies because the delta appended targets), each target's
    ///   previous bus is tried first — a stable reorder of the same
    ///   candidate set.
    ///
    /// The contract mirrors [`PruningLevel::Aggressive`]: feasibility
    /// verdicts, probe logs and bus counts are unchanged whenever the
    /// searches complete within `max_nodes` (the candidate *set* at every
    /// node is identical and the search stays exhaustive), but the
    /// *returned binding* may differ from the cold search's, because a
    /// different feasible leaf may be reached first. Under a starved
    /// budget a verified warm start can also answer where the cold search
    /// would exhaust its budget — answering strictly more often, the same
    /// one-sided deviation [`PruningLevel::Standard`] documents.
    pub warm_start: Option<WarmStart>,
    /// Which engine answers feasibility queries (see [`SearchLevel`]).
    /// Defaults to [`SearchLevel::Standard`]; absent from serialized
    /// limits recorded before the knob existed.
    #[serde(default)]
    pub search: SearchLevel,
    /// Seed for the learned search's restart value-order perturbation.
    /// Ignored under [`SearchLevel::Standard`]. The default (0) is a
    /// perfectly good seed — it is mixed through a finalizer before use.
    #[serde(default)]
    pub learned_seed: u64,
}

impl SolveLimits {
    /// Limits with an explicit node budget and the default
    /// ([`PruningLevel::Standard`]) pruning level.
    #[must_use]
    pub const fn nodes(max_nodes: u64) -> Self {
        Self {
            max_nodes,
            pruning: PruningLevel::Standard,
            warm_start: None,
            search: SearchLevel::Standard,
            learned_seed: 0,
        }
    }

    /// Overrides the pruning level (builder style).
    #[must_use]
    pub const fn with_pruning(mut self, pruning: PruningLevel) -> Self {
        self.pruning = pruning;
        self
    }

    /// Selects the feasibility search engine (builder style). See
    /// [`SearchLevel`] for the verdict-equivalence contract.
    #[must_use]
    pub const fn with_search(mut self, search: SearchLevel) -> Self {
        self.search = search;
        self
    }

    /// Sets the learned search's restart seed (builder style).
    #[must_use]
    pub const fn with_learned_seed(mut self, seed: u64) -> Self {
        self.learned_seed = seed;
        self
    }

    /// Installs a previous solution as a warm start (builder style). See
    /// [`SolveLimits::warm_start`] for the exact semantics and the
    /// bit-identity contract.
    #[must_use]
    pub fn with_warm_start(mut self, warm: WarmStart) -> Self {
        self.warm_start = Some(warm);
        self
    }

    /// The warm-start assignment as a value-ordering hint, if any.
    fn warm_assignment(&self) -> Option<&[usize]> {
        self.warm_start.as_ref().map(|w| w.binding.assignment())
    }
}

impl Default for SolveLimits {
    fn default() -> Self {
        Self::nodes(20_000_000)
    }
}

/// Error returned when the node budget is exhausted before the search
/// completed. The partial answer is withheld: an incomplete search cannot
/// prove feasibility *or* infeasibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLimitExceeded {
    /// The limit that was hit.
    pub limit: u64,
}

impl fmt::Display for NodeLimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binding search exceeded the {}-node limit", self.limit)
    }
}

impl Error for NodeLimitExceeded {}

/// Why a cancellable search stopped before reaching a definitive answer.
///
/// Speculative callers (the phase-3 probe scheduler) solve bindings whose
/// answers may become irrelevant while they are being computed; the
/// executor's [`CancelToken`] threads through
/// [`BindingProblem::find_feasible_cancellable`], and raising it makes
/// the search bail at the next node-count checkpoint instead of
/// finishing a proof nobody will read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchInterrupted {
    /// The node budget ran out before the search completed.
    Budget(NodeLimitExceeded),
    /// The caller's [`CancelToken`] was raised; the partial answer is
    /// withheld (an interrupted search proves nothing), but unlike a
    /// budget error the caller asked for the interruption.
    Cancelled,
}

impl From<NodeLimitExceeded> for SearchInterrupted {
    fn from(e: NodeLimitExceeded) -> Self {
        SearchInterrupted::Budget(e)
    }
}

impl fmt::Display for SearchInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchInterrupted::Budget(e) => e.fmt(f),
            SearchInterrupted::Cancelled => write!(f, "binding search cancelled by the caller"),
        }
    }
}

impl Error for SearchInterrupted {}

/// How many branch attempts pass between two polls of the cancellation
/// token: rare enough to stay off the profile, frequent enough that a
/// cancelled search returns within microseconds.
const CANCEL_POLL_MASK: u64 = 0xFFF;

/// Counters describing how a feasibility search earned its answer.
///
/// The standard search fills only `nodes`; the learned search
/// ([`SearchLevel::Learned`]) additionally reports its restart and
/// nogood activity. All counters are deterministic functions of
/// `(problem, limits)` — identical across runs and worker counts — so
/// they are safe to record in outcomes, diff in tests, and snapshot in
/// benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Branch attempts charged against [`SolveLimits::max_nodes`]
    /// (summed across restarts for the learned search).
    pub nodes: u64,
    /// Completed restarts before the answer (0 for the standard search;
    /// 0 for a learned search that finished within its first burst).
    pub restarts: u64,
    /// Nogood clauses learned and retained at any point.
    pub nogoods_learned: u64,
    /// Candidate placements vetoed by a watched nogood clause.
    pub nogood_hits: u64,
}

impl SearchStats {
    /// Accumulates another search's counters into this one (used by
    /// callers that sum stats over a sequence of probes).
    pub fn absorb(&mut self, other: SearchStats) {
        self.nodes += other.nodes;
        self.restarts += other.restarts;
        self.nogoods_learned += other.nogoods_learned;
        self.nogood_hits += other.nogood_hits;
    }
}

/// A complete target→bus assignment together with its objective value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    assignment: Vec<usize>,
    max_bus_overlap: u64,
}

/// Flat arena of the DFS's incrementally maintained search state: every
/// per-bus quantity lives in one contiguous allocation with a fixed
/// stride (`[bus × window]` usage, `[bus × word]` member masks), so a
/// node's push/undo touches a handful of cache lines and the whole
/// search performs **zero** heap allocation after setup — the former
/// per-bus `Vec<Vec<…>>` soup (`used`, `members`, `masks`) and the
/// per-depth candidate clones are gone. Member lists are not stored at
/// all: emptiness and `maxtb` read `lens`, conflict feasibility is one
/// word-parallel AND against the flat mask stride, and the rare
/// member-set walks (leaf objective, overlap sums) iterate the mask bits
/// (same pair set, commutative `u64` sums — bit-identical results).
struct SearchArena {
    buses: usize,
    windows: usize,
    /// Mask words per bus.
    words: usize,
    /// Per-bus per-window consumed capacity, `[k * windows + m]`.
    used: Vec<u64>,
    /// Per-bus member bitsets, `[k * words + w]`.
    masks: Vec<u64>,
    /// Per-bus summed pairwise overlap (maintained only when optimizing).
    bus_overlap: Vec<u64>,
    /// Exact per-bus minimum window slack `min_m (cap(m) − used(k,m))`.
    min_slack: Vec<u64>,
    /// Exact per-bus total slack `Σ_m (cap(m) − used(k,m))`.
    total_slack: Vec<u64>,
    /// Per-bus member counts.
    lens: Vec<usize>,
    /// Targets not yet bound.
    unbound: TargetSet,
    /// Remaining (unbound) demand per window.
    rem_window: Vec<u64>,
    /// Incremental usability matrix `[t * buses + k]`, valid for unbound
    /// `t`: the batched bound input. A placement on bus `k` changes only
    /// bus `k`'s state, so only column `k` is recomputed per push (and
    /// restored from the depth frame on undo) — the per-node
    /// [`CombinedBound`] passes read the matrix instead of re-deriving
    /// usability from scratch for every (target, bus) pair. Empty when
    /// pruning is off.
    usable: Vec<bool>,
}

impl SearchArena {
    /// The member-mask words of bus `k`.
    #[inline]
    fn mask(&self, k: usize) -> &[u64] {
        &self.masks[k * self.words..(k + 1) * self.words]
    }

    /// Recomputes usability column `k` for the unbound targets via
    /// exactly the bounds' own [`bounds::usable_in`] predicate — matrix
    /// reads and direct evaluation are the same function of the same
    /// state, which is what keeps pruned searches bit-identical (the
    /// audited mode asserts it at every node).
    fn refresh_column(
        &mut self,
        problem: &BindingProblem,
        target_total: &[u64],
        peak: &[u64],
        sparse: &[Vec<(usize, u64)>],
        k: usize,
    ) {
        let Self {
            unbound,
            usable,
            masks,
            lens,
            used,
            total_slack,
            min_slack,
            buses,
            words,
            ..
        } = self;
        for t in unbound.iter() {
            usable[t * *buses + k] = bounds::usable_in(
                problem,
                target_total,
                peak,
                sparse,
                masks,
                *words,
                lens,
                used,
                total_slack,
                min_slack,
                t,
                k,
            );
        }
    }
}

/// Summed pairwise overlap of the targets in a flat mask — the leaf
/// objective recomputation of the feasibility search. Iterates the same
/// pair set `{(i, j) : i < j both members}` the former member lists
/// yielded; `u64` addition is commutative, so the sum is bit-identical.
fn mask_pair_overlap(problem: &BindingProblem, words: &[u64]) -> u64 {
    let mut ov = 0u64;
    for (wi, &wa) in words.iter().enumerate() {
        let mut a = wa;
        while a != 0 {
            let i = wi * 64 + a.trailing_zeros() as usize;
            a &= a - 1;
            // Partners above `i` in the same word…
            let mut b = a;
            while b != 0 {
                let j = wi * 64 + b.trailing_zeros() as usize;
                b &= b - 1;
                ov += problem.overlap(i, j);
            }
            // …and in the higher words.
            for (wj, &wb) in words.iter().enumerate().skip(wi + 1) {
                let mut b = wb;
                while b != 0 {
                    let j = wj * 64 + b.trailing_zeros() as usize;
                    b &= b - 1;
                    ov += problem.overlap(i, j);
                }
            }
        }
    }
    ov
}

/// Overlap a candidate target `t` would add to the bus whose member mask
/// is `words` — the optimizing search's value-ordering key. Same member
/// set, commutative sum: bit-identical to the former member-list walk.
fn mask_added_overlap(problem: &BindingProblem, words: &[u64], t: usize) -> u64 {
    let mut ov = 0u64;
    for (wi, &w) in words.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let u = wi * 64 + w.trailing_zeros() as usize;
            w &= w - 1;
            ov += problem.overlap(t, u);
        }
    }
    ov
}

impl Binding {
    /// Builds a binding from a raw assignment with the objective left at 0
    /// (use [`BindingProblem::verify`] to recompute it).
    #[must_use]
    pub fn from_assignment(assignment: Vec<usize>) -> Self {
        Self {
            assignment,
            max_bus_overlap: 0,
        }
    }

    /// Builds a binding from a raw assignment and a known objective value.
    #[must_use]
    pub fn from_assignment_with_overlap(assignment: Vec<usize>, max_bus_overlap: u64) -> Self {
        Self {
            assignment,
            max_bus_overlap,
        }
    }

    /// The bus index assigned to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    #[must_use]
    pub fn bus_of(&self, target: usize) -> usize {
        self.assignment[target]
    }

    /// The raw assignment vector, indexed by target.
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The maximum summed pairwise overlap on any single bus — the
    /// `maxov` objective of the paper's MILP-2.
    #[must_use]
    pub fn max_bus_overlap(&self) -> u64 {
        self.max_bus_overlap
    }

    /// Groups targets per bus: `result[k]` lists the targets bound to bus
    /// `k` in increasing order.
    #[must_use]
    pub fn buses(&self, num_buses: usize) -> Vec<Vec<usize>> {
        let mut buses = vec![Vec::new(); num_buses];
        for (t, &k) in self.assignment.iter().enumerate() {
            buses[k].push(t);
        }
        buses
    }

    /// Number of buses actually used (non-empty).
    #[must_use]
    pub fn used_buses(&self) -> usize {
        let mut seen: Vec<usize> = self.assignment.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// The crossbar binding problem: Eq. (3)–(9) data plus the overlap matrix
/// that drives the MILP-2 objective.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BindingProblem {
    num_targets: usize,
    num_buses: usize,
    num_windows: usize,
    window_size: u64,
    /// Per-window bus capacity in cycles (Eq. 4 right-hand sides). For the
    /// paper's uniform windows every entry equals `window_size`; variable
    /// window plans (§8 future work) supply heterogeneous capacities.
    capacities: Vec<u64>,
    /// `demands[t][m]` = `comm(t, m)`.
    demands: Vec<Vec<u64>>,
    /// Word-parallel adjacency bitsets of the conflict relation (Eq. 2):
    /// group feasibility is `row(t) ∩ members(k) ≠ ∅`, one `AND` per word.
    conflicts: ConflictGraph,
    maxtb: usize,
    /// Full symmetric overlap matrix `om` (may be all zeros when only
    /// feasibility matters).
    overlap: Vec<u64>,
}

impl BindingProblem {
    /// Creates a problem from per-target per-window demands.
    ///
    /// # Panics
    ///
    /// Panics if `num_buses == 0`, `window_size == 0`, the demand rows have
    /// inconsistent lengths, or any single demand exceeds the window size
    /// (such an instance is trivially infeasible and indicates an analysis
    /// bug upstream).
    #[must_use]
    pub fn new(num_buses: usize, window_size: u64, demands: Vec<Vec<u64>>) -> Self {
        assert!(window_size > 0, "window size must be positive");
        let num_windows = demands.first().map_or(0, Vec::len);
        Self::with_capacities(num_buses, vec![window_size; num_windows], demands)
    }

    /// Creates a problem with **per-window capacities** (variable window
    /// plans): window `m`'s bandwidth constraint is
    /// `Σ_i comm(i,m)·x(i,k) ≤ capacities[m]`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BindingProblem::new`], or if
    /// the capacity vector's length disagrees with the demand rows.
    #[must_use]
    pub fn with_capacities(num_buses: usize, capacities: Vec<u64>, demands: Vec<Vec<u64>>) -> Self {
        assert!(num_buses > 0, "at least one bus required");
        let num_targets = demands.len();
        let num_windows = demands.first().map_or(0, Vec::len);
        assert_eq!(
            capacities.len(),
            num_windows,
            "one capacity per window required"
        );
        assert!(
            capacities.iter().all(|&c| c > 0) || num_windows == 0,
            "window capacities must be positive"
        );
        for (t, row) in demands.iter().enumerate() {
            assert_eq!(
                row.len(),
                num_windows,
                "target {t} has inconsistent window count"
            );
            for (m, &d) in row.iter().enumerate() {
                assert!(
                    d <= capacities[m],
                    "target {t} demands {d} > capacity {} in window {m}",
                    capacities[m]
                );
            }
        }
        let window_size = capacities.iter().copied().max().unwrap_or(1);
        Self {
            num_targets,
            num_buses,
            num_windows,
            window_size,
            capacities,
            demands,
            conflicts: ConflictGraph::none(num_targets),
            maxtb: usize::MAX,
            overlap: vec![0; num_targets * num_targets],
        }
    }

    /// Adds a pairwise conflict (Eq. 2/7) and returns `self`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or out of range.
    #[must_use]
    pub fn with_conflict(mut self, i: usize, j: usize) -> Self {
        self.add_conflict(i, j);
        self
    }

    /// Adds a pairwise conflict in place.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or out of range.
    pub fn add_conflict(&mut self, i: usize, j: usize) {
        assert!(i != j, "self-conflict");
        assert!(i < self.num_targets && j < self.num_targets);
        self.conflicts.forbid(i, j);
    }

    /// Installs a whole conflict graph at once (builder style) — the bulk
    /// path phase 2 uses so its bitset graph is shared rather than
    /// re-added pair by pair.
    ///
    /// # Panics
    ///
    /// Panics if the graph's target count differs from the problem's.
    #[must_use]
    pub fn with_conflict_graph(mut self, conflicts: ConflictGraph) -> Self {
        assert_eq!(
            conflicts.num_targets(),
            self.num_targets,
            "conflict graph arity mismatch"
        );
        self.conflicts = conflicts;
        self
    }

    /// Sets the per-bus target cap `maxtb` (Eq. 8) and returns `self`.
    #[must_use]
    pub fn with_maxtb(mut self, maxtb: usize) -> Self {
        assert!(maxtb > 0, "maxtb must allow at least one target per bus");
        self.maxtb = maxtb;
        self
    }

    /// Sets the aggregate overlap `om(i,j)` used by the optimisation
    /// objective, and returns `self`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or `i == j`.
    #[must_use]
    pub fn with_overlap(mut self, i: usize, j: usize, value: u64) -> Self {
        assert!(i != j && i < self.num_targets && j < self.num_targets);
        self.overlap[i * self.num_targets + j] = value;
        self.overlap[j * self.num_targets + i] = value;
        self
    }

    /// Bulk-loads a symmetric overlap matrix via a callback.
    pub fn set_overlaps(&mut self, mut om: impl FnMut(usize, usize) -> u64) {
        for i in 0..self.num_targets {
            for j in (i + 1)..self.num_targets {
                let v = om(i, j);
                self.overlap[i * self.num_targets + j] = v;
                self.overlap[j * self.num_targets + i] = v;
            }
        }
    }

    /// Number of targets.
    #[must_use]
    pub fn num_targets(&self) -> usize {
        self.num_targets
    }

    /// Number of buses.
    #[must_use]
    pub fn num_buses(&self) -> usize {
        self.num_buses
    }

    /// Number of analysis windows.
    #[must_use]
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// The window size `WS` in cycles (maximum capacity for variable
    /// plans).
    #[must_use]
    pub fn window_size(&self) -> u64 {
        self.window_size
    }

    /// The bandwidth capacity of window `m` (Eq. 4 right-hand side).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn capacity(&self, window: usize) -> u64 {
        self.capacities[window]
    }

    /// The demand `comm(target, window)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn demand(&self, target: usize, window: usize) -> u64 {
        self.demands[target][window]
    }

    /// The per-bus target cap `maxtb` (Eq. 8); `usize::MAX` when uncapped.
    #[must_use]
    pub fn maxtb(&self) -> usize {
        self.maxtb
    }

    /// Whether targets `i` and `j` conflict.
    #[must_use]
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        self.conflicts.conflicts(i, j)
    }

    /// The conflict relation as a word-parallel bitset graph.
    #[must_use]
    pub fn conflict_graph(&self) -> &ConflictGraph {
        &self.conflicts
    }

    /// Word-parallel group feasibility: whether `target` conflicts with
    /// any member of `bus` — one `AND` per 64 targets.
    #[must_use]
    pub fn conflicts_with_set(&self, target: usize, bus: &TargetSet) -> bool {
        self.conflicts.conflicts_with_set(target, bus)
    }

    /// Iterates all conflicting pairs `(i, j)` with `i < j`.
    pub fn conflict_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.conflicts.pairs()
    }

    /// The overlap coefficient `om(i,j)`.
    #[must_use]
    pub fn overlap(&self, i: usize, j: usize) -> u64 {
        self.overlap[i * self.num_targets + j]
    }

    /// Verifies that `binding` satisfies every constraint; returns the
    /// recomputed max per-bus overlap on success.
    #[must_use]
    pub fn verify(&self, binding: &Binding) -> Option<u64> {
        if binding.assignment.len() != self.num_targets {
            return None;
        }
        if binding.assignment.iter().any(|&k| k >= self.num_buses) {
            return None;
        }
        let buses = binding.buses(self.num_buses);
        let mut max_ov = 0u64;
        let mut mask = TargetSet::empty(self.num_targets);
        for members in &buses {
            if members.len() > self.maxtb {
                return None;
            }
            // Conflicts, word-parallel: a member clashing with any other
            // member intersects the bus mask (rows are irreflexive).
            mask.clear();
            for &t in members {
                mask.insert(t);
            }
            if members.iter().any(|&t| self.conflicts_with_set(t, &mask)) {
                return None;
            }
            // Window capacity.
            for m in 0..self.num_windows {
                let load: u64 = members.iter().map(|&t| self.demands[t][m]).sum();
                if load > self.capacities[m] {
                    return None;
                }
            }
            // Overlap objective.
            let mut ov = 0u64;
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    ov += self.overlap(i, j);
                }
            }
            max_ov = max_ov.max(ov);
        }
        Some(max_ov)
    }

    /// The deterministic branching order of the exact search: decreasing
    /// maximum window demand, then conflict degree, then total demand —
    /// the classic first-fail ordering. Exposed so per-node lower bounds
    /// ([`crate::bounds`]) and their tests can reproduce the DFS state
    /// exactly.
    #[must_use]
    pub fn branching_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.num_targets).collect();
        let key = |t: usize| {
            let max_d = self.demands[t].iter().copied().max().unwrap_or(0);
            let total: u64 = self.demands[t].iter().sum();
            let degree = self.conflicts.degree(t);
            (max_d, degree as u64, total)
        };
        order.sort_by_key(|&t| std::cmp::Reverse(key(t)));
        order
    }

    /// Re-verifies a warm-started binding against *this* problem; on
    /// success returns it with the objective recomputed (the stale
    /// [`WarmStart::objective`] is never trusted). This is the instant
    /// path of incremental re-solving: after a delta that did not disturb
    /// the previous assignment's feasibility, the answer costs one
    /// [`BindingProblem::verify`] pass and zero search nodes.
    fn warm_verified(&self, limits: &SolveLimits) -> Option<Binding> {
        let warm = limits.warm_start.as_ref()?;
        let objective = self.verify(&warm.binding)?;
        Some(Binding::from_assignment_with_overlap(
            warm.binding.assignment.clone(),
            objective,
        ))
    }

    /// Finds any feasible binding (the paper's MILP-1, Eq. 10).
    ///
    /// Returns `Ok(None)` when the instance is provably infeasible.
    ///
    /// A verified [`SolveLimits::warm_start`] short-circuits the search
    /// entirely; an unverifiable one demotes to a value-ordering hint.
    /// Verdicts are unchanged either way (see [`SolveLimits::warm_start`]
    /// for the contract), but the returned binding may differ from the
    /// cold search's.
    ///
    /// # Errors
    ///
    /// [`NodeLimitExceeded`] when the search budget runs out before a
    /// definitive answer.
    pub fn find_feasible(
        &self,
        limits: &SolveLimits,
    ) -> Result<Option<Binding>, NodeLimitExceeded> {
        self.find_feasible_stats(limits).map(|(best, _)| best)
    }

    /// [`BindingProblem::find_feasible`] that additionally reports the
    /// search's [`SearchStats`]. This is the entry point that honours
    /// [`SolveLimits::search`]: under [`SearchLevel::Learned`] the query
    /// is answered by the conflict-driven learned search (restarts,
    /// nogoods) instead of the frozen-order DFS. A verified warm start
    /// short-circuits either engine with zeroed stats.
    ///
    /// # Errors
    ///
    /// [`NodeLimitExceeded`] when the search budget runs out before a
    /// definitive answer.
    pub fn find_feasible_stats(
        &self,
        limits: &SolveLimits,
    ) -> Result<(Option<Binding>, SearchStats), NodeLimitExceeded> {
        self.feasible_stats_impl(limits, None).map_err(|e| match e {
            SearchInterrupted::Budget(b) => b,
            SearchInterrupted::Cancelled => {
                unreachable!("no cancellation flag was supplied")
            }
        })
    }

    /// [`BindingProblem::find_feasible_stats`] with a cooperative
    /// [`CancelToken`] (the learned search polls it at the same node
    /// checkpoints as the standard DFS).
    ///
    /// # Errors
    ///
    /// [`SearchInterrupted::Budget`] when the node budget runs out,
    /// [`SearchInterrupted::Cancelled`] when the token was raised.
    pub fn find_feasible_stats_cancellable(
        &self,
        limits: &SolveLimits,
        cancel: &CancelToken,
    ) -> Result<(Option<Binding>, SearchStats), SearchInterrupted> {
        self.feasible_stats_impl(limits, Some(cancel))
    }

    /// Shared feasibility driver: warm-start short-circuit, then the
    /// engine selected by [`SolveLimits::search`].
    fn feasible_stats_impl(
        &self,
        limits: &SolveLimits,
        cancel: Option<&CancelToken>,
    ) -> Result<(Option<Binding>, SearchStats), SearchInterrupted> {
        if let Some(warm) = self.warm_verified(limits) {
            return Ok((Some(warm), SearchStats::default()));
        }
        match limits.search {
            SearchLevel::Standard => {
                self.search_full(limits, None, cancel, false)
                    .map(|(best, nodes)| {
                        let stats = SearchStats {
                            nodes,
                            ..SearchStats::default()
                        };
                        (best, stats)
                    })
            }
            SearchLevel::Learned => learned::find_feasible(self, limits, cancel),
        }
    }

    /// [`BindingProblem::find_feasible`] in **audited** mode: at every
    /// node of the DFS the incrementally maintained pruning state
    /// (unbound set, bus masks, slacks, remaining window demand) is
    /// compared against a from-scratch [`NodeState`] rebuilt from the
    /// partial assignment, and the incremental [`CombinedBound`] value
    /// against a fresh recomputation. Any divergence panics. This is the
    /// self-checking mode the `bound_admissibility` property suite runs;
    /// answers are identical to [`BindingProblem::find_feasible`], just
    /// slower.
    ///
    /// # Errors
    ///
    /// [`NodeLimitExceeded`] when the search budget runs out before a
    /// definitive answer.
    ///
    /// # Panics
    ///
    /// Panics when the incremental state or bound diverges from the
    /// from-scratch recomputation at any depth.
    pub fn find_feasible_audited(
        &self,
        limits: &SolveLimits,
    ) -> Result<Option<Binding>, NodeLimitExceeded> {
        if let Some(warm) = self.warm_verified(limits) {
            return Ok(Some(warm));
        }
        self.search_full(limits, None, None, true)
            .map(|(best, _nodes)| best)
            .map_err(|e| match e {
                SearchInterrupted::Budget(b) => b,
                SearchInterrupted::Cancelled => {
                    unreachable!("no cancellation flag was supplied")
                }
            })
    }

    /// [`BindingProblem::find_feasible`] that additionally reports the
    /// number of search nodes explored — the denominator of the
    /// node-rate (nodes/s) metric the `hotpath` bench snapshots. A node
    /// is one candidate placement charged against
    /// [`SolveLimits::max_nodes`]; the count is a pure function of the
    /// search (identical across runs and worker counts), so a node-rate
    /// comparison between two builds measures per-node cost and nothing
    /// else. A verified warm start short-circuits the search and reports
    /// zero nodes.
    ///
    /// # Errors
    ///
    /// [`NodeLimitExceeded`] when the search budget runs out before a
    /// definitive answer.
    pub fn find_feasible_counted(
        &self,
        limits: &SolveLimits,
    ) -> Result<(Option<Binding>, u64), NodeLimitExceeded> {
        self.find_feasible_stats(limits)
            .map(|(best, stats)| (best, stats.nodes))
    }

    /// [`BindingProblem::find_feasible`] with a cooperative
    /// [`CancelToken`]: when the token (or any of its ancestors — the
    /// executor's scopes hand out child tokens) is cancelled, the search
    /// returns [`SearchInterrupted::Cancelled`] at its next checkpoint
    /// (within a few thousand nodes). An un-cancelled run behaves
    /// exactly like `find_feasible` — same branching, same node
    /// accounting, same answer.
    ///
    /// # Errors
    ///
    /// [`SearchInterrupted::Budget`] when the node budget runs out,
    /// [`SearchInterrupted::Cancelled`] when the token was raised.
    pub fn find_feasible_cancellable(
        &self,
        limits: &SolveLimits,
        cancel: &CancelToken,
    ) -> Result<Option<Binding>, SearchInterrupted> {
        self.feasible_stats_impl(limits, Some(cancel))
            .map(|(best, _)| best)
    }

    /// Finds the binding minimising the maximum per-bus overlap (the
    /// paper's MILP-2, Eq. 11). Returns `Ok(None)` when infeasible.
    ///
    /// A verified [`SolveLimits::warm_start`] replaces the
    /// incumbent-seeding feasibility pass: the improving search starts
    /// from the warm binding's *recomputed* objective. The optimal
    /// objective value is unchanged (the improving search below the
    /// incumbent stays exhaustive); the returned binding may differ.
    ///
    /// # Errors
    ///
    /// [`NodeLimitExceeded`] when the search budget runs out before
    /// optimality is proven.
    pub fn optimize(&self, limits: &SolveLimits) -> Result<Option<Binding>, NodeLimitExceeded> {
        // Seed the incumbent with any feasible solution so pruning bites
        // immediately — a verified warm start *is* such a solution and
        // saves the seeding search outright. The seeding search honours
        // [`SolveLimits::search`] (the learned engine can reach a first
        // witness the frozen order cannot); the improving search below is
        // always the standard exhaustive one, so the final objective is
        // engine-independent.
        let seed = match self.warm_verified(limits) {
            Some(warm) => Some(warm),
            None => self.find_feasible(limits)?,
        };
        match seed {
            None => Ok(None),
            Some(feasible) => {
                let best = self.search(limits, Some(feasible.max_bus_overlap))?;
                Ok(Some(best.unwrap_or(feasible)))
            }
        }
    }

    /// [`BindingProblem::optimize`] with a cooperative [`CancelToken`]:
    /// both the incumbent-seeding search and the improving search poll
    /// the token at their checkpoints, so a raised token abandons MILP-2
    /// within a few thousand nodes. An un-cancelled run takes exactly the
    /// same path as `optimize` — same branching, same node accounting,
    /// same binding.
    ///
    /// # Errors
    ///
    /// [`SearchInterrupted::Budget`] when the node budget runs out,
    /// [`SearchInterrupted::Cancelled`] when the token was raised.
    pub fn optimize_cancellable(
        &self,
        limits: &SolveLimits,
        cancel: &CancelToken,
    ) -> Result<Option<Binding>, SearchInterrupted> {
        let seed = match self.warm_verified(limits) {
            Some(warm) => Some(warm),
            None => self.feasible_stats_impl(limits, Some(cancel))?.0,
        };
        match seed {
            None => Ok(None),
            Some(feasible) => {
                let best =
                    self.search_with(limits, Some(feasible.max_bus_overlap), Some(cancel))?;
                Ok(Some(best.unwrap_or(feasible)))
            }
        }
    }

    /// [`BindingProblem::search_with`] without cancellation; the only
    /// interruption left is the node budget.
    fn search(
        &self,
        limits: &SolveLimits,
        incumbent_bound: Option<u64>,
    ) -> Result<Option<Binding>, NodeLimitExceeded> {
        self.search_with(limits, incumbent_bound, None)
            .map_err(|e| match e {
                SearchInterrupted::Budget(b) => b,
                SearchInterrupted::Cancelled => {
                    unreachable!("no cancellation flag was supplied")
                }
            })
    }

    /// [`BindingProblem::search_full`] without auditing — the production
    /// path.
    fn search_with(
        &self,
        limits: &SolveLimits,
        incumbent_bound: Option<u64>,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<Binding>, SearchInterrupted> {
        self.search_full(limits, incumbent_bound, cancel, false)
            .map(|(best, _nodes)| best)
    }

    /// Core DFS. When `incumbent_bound` is `Some(b)`, searches for a
    /// binding with max overlap strictly below `b` and keeps improving.
    /// With `audit` set, the incremental pruning state is checked against
    /// a from-scratch rebuild at every node (test-only mode).
    fn search_full(
        &self,
        limits: &SolveLimits,
        incumbent_bound: Option<u64>,
        cancel: Option<&CancelToken>,
        audit: bool,
    ) -> Result<(Option<Binding>, u64), SearchInterrupted> {
        if self.num_targets == 0 {
            return Ok((
                Some(Binding {
                    assignment: Vec::new(),
                    max_bus_overlap: 0,
                }),
                0,
            ));
        }

        // Target order: decreasing max-window demand, then conflict degree.
        let order = self.branching_order();

        // Sparse demand lists plus per-target peak/total demand (the
        // operands of the O(1) capacity fast paths below).
        let sparse: Vec<Vec<(usize, u64)>> = (0..self.num_targets)
            .map(|t| {
                self.demands[t]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &d)| d > 0)
                    .map(|(m, &d)| (m, d))
                    .collect()
            })
            .collect();
        let peak: Vec<u64> = sparse
            .iter()
            .map(|s| s.iter().map(|&(_, d)| d).max().unwrap_or(0))
            .collect();
        let total: Vec<u64> = sparse
            .iter()
            .map(|s| s.iter().map(|&(_, d)| d).sum())
            .collect();

        let initial_min_slack = self.capacities.iter().copied().min().unwrap_or(u64::MAX);
        let initial_total_slack: u64 = self.capacities.iter().sum();
        let column_demand = bounds::column_demand(self);
        let critical = bounds::critical_windows(&column_demand);
        let mut all_targets = TargetSet::empty(self.num_targets);
        for t in 0..self.num_targets {
            all_targets.insert(t);
        }
        let mask_words = all_targets.words().len();
        let mut arena = SearchArena {
            buses: self.num_buses,
            windows: self.num_windows,
            words: mask_words,
            used: vec![0; self.num_buses * self.num_windows],
            masks: vec![0; self.num_buses * mask_words],
            bus_overlap: vec![0; self.num_buses],
            min_slack: vec![initial_min_slack; self.num_buses],
            total_slack: vec![initial_total_slack; self.num_buses],
            lens: vec![0; self.num_buses],
            unbound: all_targets,
            rem_window: column_demand,
            usable: Vec::new(),
        };
        let mut prune_bound = CombinedBound::default();

        let mut nodes = 0u64;
        let mut best: Option<Binding> = None;
        let mut bound = incumbent_bound;
        let optimizing = incumbent_bound.is_some();
        // The usability matrix is only consumed by the lower bounds, so
        // an unpruned search skips its maintenance entirely.
        let track_usable = limits.pruning != PruningLevel::Off;
        if track_usable {
            arena.usable = vec![false; self.num_targets * self.num_buses];
            for k in 0..self.num_buses {
                arena.refresh_column(self, &total, &peak, &sparse, k);
            }
        }
        // Contiguous per-depth frames, split off one level at a time on
        // the way down (`split_at_mut`): `cand_frames` holds each depth's
        // candidate list (`num_buses` slots), `col_frames` each depth's
        // saved usability column (`num_targets` slots). One upfront
        // allocation each — the DFS inner loop itself allocates nothing.
        let mut cand_frames: Vec<(u64, usize)> = vec![(0, 0); self.num_targets * self.num_buses];
        let mut col_frames: Vec<bool> = vec![false; self.num_targets * self.num_targets];

        /// Audit hook: rebuilds the pruning state from scratch for the
        /// current partial assignment and asserts that the incrementally
        /// maintained arena — including the usability matrix — and the
        /// lower bounds computed from it match the [`NodeState`]
        /// recomputation exactly.
        #[allow(clippy::too_many_arguments)] // audit mirrors the dfs state
        fn audit_node(
            problem: &BindingProblem,
            order: &[usize],
            critical: &[usize],
            total: &[u64],
            peak: &[u64],
            sparse: &[Vec<(usize, u64)>],
            st: &SearchArena,
            assignment: &[usize],
        ) {
            let depth = assignment.len();
            let pairs: Vec<(usize, usize)> = order
                .iter()
                .zip(assignment)
                .map(|(&t, &k)| (t, k))
                .collect();
            let scratch = NodeState::from_partial(problem, &pairs);
            let fresh = scratch.context(problem);
            assert_eq!(&st.unbound, fresh.unbound, "unbound set at depth {depth}");
            assert_eq!(st.masks.as_slice(), fresh.bus_masks, "masks at {depth}");
            assert_eq!(st.words, fresh.mask_words, "mask stride at {depth}");
            assert_eq!(st.lens.as_slice(), fresh.bus_len, "lens at {depth}");
            assert_eq!(st.used.as_slice(), fresh.used, "used at {depth}");
            assert_eq!(
                st.total_slack.as_slice(),
                fresh.total_slack,
                "total slack at depth {depth}"
            );
            assert_eq!(
                st.min_slack.as_slice(),
                fresh.min_slack,
                "min slack at depth {depth}"
            );
            assert_eq!(
                st.rem_window.as_slice(),
                fresh.rem_window,
                "remaining window demand at depth {depth}"
            );
            assert_eq!(order, fresh.order, "branching order");
            assert_eq!(critical, fresh.critical_windows, "critical windows");
            assert_eq!(total, fresh.target_total, "target totals");
            assert_eq!(peak, fresh.peak, "target peaks");
            assert_eq!(sparse, fresh.sparse, "sparse demand lists");
            // The incrementally maintained usability matrix must equal a
            // from-scratch evaluation of the same predicate on every
            // unbound row (bound rows are dead — the bounds never read
            // them).
            for t in st.unbound.iter() {
                for k in 0..problem.num_buses {
                    let direct = bounds::usable_in(
                        problem,
                        total,
                        peak,
                        sparse,
                        fresh.bus_masks,
                        fresh.mask_words,
                        fresh.bus_len,
                        fresh.used,
                        fresh.total_slack,
                        fresh.min_slack,
                        t,
                        k,
                    );
                    assert_eq!(
                        st.usable[t * st.buses + k],
                        direct,
                        "usability matrix diverged at depth {depth} (target {t}, bus {k})"
                    );
                }
            }
            let incremental = bounds::PruneContext {
                problem,
                order,
                critical_windows: critical,
                target_total: total,
                unbound: &st.unbound,
                bus_masks: &st.masks,
                mask_words: st.words,
                bus_len: &st.lens,
                used: &st.used,
                total_slack: &st.total_slack,
                min_slack: &st.min_slack,
                rem_window: &st.rem_window,
                peak,
                sparse,
                usable_matrix: Some(&st.usable),
            };
            for (inc, scr) in [
                (
                    CombinedBound::default().buses_needed(&incremental),
                    CombinedBound::default().buses_needed(&fresh),
                ),
                (
                    bounds::CliqueCoverBound::default().buses_needed(&incremental),
                    bounds::CliqueCoverBound::default().buses_needed(&fresh),
                ),
                (
                    bounds::BandwidthPackingBound::default().buses_needed(&incremental),
                    bounds::BandwidthPackingBound::default().buses_needed(&fresh),
                ),
            ] {
                assert_eq!(
                    inc, scr,
                    "incremental bound != from-scratch recomputation at depth {depth}"
                );
            }
        }

        // Iterative DFS with explicit stack of (depth, bus-to-try-next).
        // Simpler: recursive closure via a helper function.
        #[allow(clippy::too_many_arguments)] // explicit search state, one hop deep
        fn dfs(
            problem: &BindingProblem,
            order: &[usize],
            sparse: &[Vec<(usize, u64)>],
            peak: &[u64],
            total: &[u64],
            critical: &[usize],
            st: &mut SearchArena,
            prune_bound: &mut CombinedBound,
            cand_frames: &mut [(u64, usize)],
            col_frames: &mut [bool],
            nodes: &mut u64,
            limits: &SolveLimits,
            warm: Option<&[usize]>,
            cancel: Option<&CancelToken>,
            bound: &mut Option<u64>,
            optimizing: bool,
            audit: bool,
            best: &mut Option<Binding>,
            assignment: &mut Vec<usize>,
        ) -> Result<bool, SearchInterrupted> {
            let pruning = limits.pruning;
            let track_usable = pruning != PruningLevel::Off;
            let depth = assignment.len();
            if depth == order.len() {
                // In pure feasibility mode the per-bus overlap sums are not
                // maintained during the descent (they are dead weight on
                // every node); recompute the objective once at the leaf.
                let max_ov = if optimizing {
                    st.bus_overlap.iter().copied().max().unwrap_or(0)
                } else {
                    (0..st.buses)
                        .map(|k| mask_pair_overlap(problem, st.mask(k)))
                        .max()
                        .unwrap_or(0)
                };
                let binding = Binding {
                    assignment: {
                        let mut a = vec![0usize; order.len()];
                        for (d, &t) in order.iter().enumerate() {
                            a[t] = assignment[d];
                        }
                        a
                    },
                    max_bus_overlap: max_ov,
                };
                if optimizing {
                    *bound = Some(max_ov);
                    *best = Some(binding);
                    return Ok(false); // keep searching for better
                }
                *best = Some(binding);
                return Ok(true); // first feasible suffices
            }
            // Per-node lower-bound pruning: an admissible bound above the
            // bus count certifies that no feasible completion exists below
            // this node, so the subtree is cut. The unpruned search would
            // have explored it without ever reaching a leaf (leaves are
            // only reached through all-constraints-satisfied placements),
            // so `best`/`bound` evolve identically — the cut is invisible
            // in the answers, it only saves nodes.
            if pruning != PruningLevel::Off {
                if audit {
                    audit_node(
                        problem, order, critical, total, peak, sparse, st, assignment,
                    );
                }
                let ctx = bounds::PruneContext {
                    problem,
                    order,
                    critical_windows: critical,
                    target_total: total,
                    unbound: &st.unbound,
                    bus_masks: &st.masks,
                    mask_words: st.words,
                    bus_len: &st.lens,
                    used: &st.used,
                    total_slack: &st.total_slack,
                    min_slack: &st.min_slack,
                    rem_window: &st.rem_window,
                    peak,
                    sparse,
                    usable_matrix: Some(&st.usable),
                };
                if prune_bound.buses_needed(&ctx) > problem.num_buses {
                    return Ok(false);
                }
            }
            let t = order[depth];
            let mut tried_empty = false;
            // Candidate buses. The cheap vetoes — maxtb and the
            // word-parallel conflict intersection against the incremental
            // member mask — run *before* the per-bus overlap sums, so the
            // ~90 % of buses a dense conflict graph rules out never pay
            // for an objective estimate or a slot in the sort. The checks
            // are conjunctive filters, so the explored placements (and
            // hence the result) are unchanged. Vetoed buses no longer
            // count against the node budget (see [`SolveLimits`]): under
            // a finite budget this search completes strictly more work
            // than the retired dense-matrix reference's accounting did.
            let (frame, rest_cands) = cand_frames.split_at_mut(problem.num_buses);
            let (saved_col, rest_cols) = col_frames.split_at_mut(problem.num_targets);
            let mut cand_len = 0usize;
            for k in 0..problem.num_buses {
                if st.lens[k] == 0 {
                    if tried_empty {
                        continue; // symmetry: all empty buses equivalent
                    }
                    tried_empty = true;
                }
                if st.lens[k] >= problem.maxtb {
                    continue;
                }
                if problem.conflict_graph().conflicts_with_words(t, st.mask(k)) {
                    continue;
                }
                // In feasibility mode the sums are skipped — nothing reads
                // them and the enumeration order is the plain bus order.
                let added: u64 = if optimizing {
                    mask_added_overlap(problem, st.mask(k), t)
                } else {
                    0
                };
                frame[cand_len] = (added, k);
                cand_len += 1;
            }
            let candidates = &mut frame[..cand_len];
            if optimizing {
                candidates.sort_by_key(|&(added, _)| added);
            } else if pruning == PruningLevel::Aggressive {
                // Best-fit ordering: try the tightest bus first (classic
                // packing heuristic). A pure reordering of the same
                // candidate set — verdicts are unchanged, but the first
                // feasible leaf (and thus the returned binding) may
                // differ, which is why this level does not claim
                // bit-identity.
                candidates.sort_by_key(|&(_, k)| (st.min_slack[k], k));
            }
            // Warm-start value ordering: the target's previous bus is
            // tried first. A *stable* partition of the same candidate set
            // — the mode-specific order above is preserved within each
            // half — so verdicts and the explored leaf set are unchanged;
            // re-solves merely gravitate to the previous solution's
            // neighbourhood. `get` tolerates arity mismatch (a delta may
            // have appended targets the previous binding never saw).
            if let Some(&prev) = warm.and_then(|w| w.get(t)) {
                candidates.sort_by_key(|&(_, k)| k != prev);
            }
            for &(added, k) in candidates.iter() {
                *nodes += 1;
                if *nodes > limits.max_nodes {
                    return Err(SearchInterrupted::Budget(NodeLimitExceeded {
                        limit: limits.max_nodes,
                    }));
                }
                // The poll is outside the budget accounting, so an
                // un-cancelled run explores exactly the nodes the plain
                // search explores.
                if *nodes & CANCEL_POLL_MASK == 0 {
                    if let Some(token) = cancel {
                        if token.is_cancelled() {
                            return Err(SearchInterrupted::Cancelled);
                        }
                    }
                }
                if let Some(b) = *bound {
                    if st.bus_overlap[k] + added >= b {
                        continue;
                    }
                }
                // Window capacity check: O(1) accept when the peak demand
                // fits the bus's minimum window slack, O(1) reject when the
                // total demand exceeds its total slack, full scan only in
                // the ambiguous band between them. All three agree exactly
                // with the scan, so search decisions are unchanged.
                let fits = peak[t] <= st.min_slack[k]
                    || (total[t] <= st.total_slack[k]
                        && sparse[t].iter().all(|&(m, d)| {
                            st.used[k * st.windows + m] + d <= problem.capacities[m]
                        }));
                if !fits {
                    continue;
                }
                // Apply. `min_slack` is refreshed from the touched windows
                // alone: the untouched windows' slack is no smaller than
                // the old global minimum, so `min(old, touched)` is a valid
                // (and usually tight) lower bound on the new minimum.
                // Only bus `k`'s state changes, so only usability column
                // `k` can change: save it into this depth's frame and
                // recompute it after the placement (O(targets) — the
                // batched alternative to the bounds recomputing the whole
                // matrix per node).
                let saved_min_slack = st.min_slack[k];
                if track_usable {
                    for (ti, slot) in saved_col.iter_mut().enumerate() {
                        *slot = st.usable[ti * st.buses + k];
                    }
                }
                let mut new_min = saved_min_slack;
                for &(m, d) in &sparse[t] {
                    st.used[k * st.windows + m] += d;
                    st.rem_window[m] -= d;
                    new_min = new_min.min(problem.capacities[m] - st.used[k * st.windows + m]);
                }
                st.min_slack[k] = new_min;
                st.total_slack[k] -= total[t];
                st.lens[k] += 1;
                st.masks[k * st.words + t / 64] |= 1u64 << (t % 64);
                st.unbound.remove(t);
                st.bus_overlap[k] += added;
                if track_usable {
                    st.refresh_column(problem, total, peak, sparse, k);
                }
                assignment.push(k);

                let done = dfs(
                    problem,
                    order,
                    sparse,
                    peak,
                    total,
                    critical,
                    st,
                    prune_bound,
                    rest_cands,
                    rest_cols,
                    nodes,
                    limits,
                    warm,
                    cancel,
                    bound,
                    optimizing,
                    audit,
                    best,
                    assignment,
                )?;

                // Undo (exact reverse, column restored from the frame).
                assignment.pop();
                st.bus_overlap[k] -= added;
                st.unbound.insert(t);
                st.lens[k] -= 1;
                st.masks[k * st.words + t / 64] &= !(1u64 << (t % 64));
                st.total_slack[k] += total[t];
                st.min_slack[k] = saved_min_slack;
                for &(m, d) in &sparse[t] {
                    st.used[k * st.windows + m] -= d;
                    st.rem_window[m] += d;
                }
                if track_usable {
                    for (ti, &slot) in saved_col.iter().enumerate() {
                        st.usable[ti * st.buses + k] = slot;
                    }
                }
                if done {
                    return Ok(true);
                }
            }
            Ok(false)
        }

        let mut assignment = Vec::with_capacity(self.num_targets);
        dfs(
            self,
            &order,
            &sparse,
            &peak,
            &total,
            &critical,
            &mut arena,
            &mut prune_bound,
            &mut cand_frames,
            &mut col_frames,
            &mut nodes,
            limits,
            limits.warm_assignment(),
            cancel,
            &mut bound,
            optimizing,
            audit,
            &mut best,
            &mut assignment,
        )?;
        Ok((best, nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> SolveLimits {
        SolveLimits::default()
    }

    #[test]
    fn trivial_single_bus() {
        let p = BindingProblem::new(1, 100, vec![vec![30], vec![40]]);
        let b = p.find_feasible(&limits()).unwrap().expect("feasible");
        assert_eq!(b.bus_of(0), b.bus_of(1));
        assert_eq!(p.verify(&b), Some(0));
    }

    #[test]
    fn bandwidth_forces_split() {
        // 60 + 50 > 100 → two buses needed; with two buses feasible.
        let p1 = BindingProblem::new(1, 100, vec![vec![60], vec![50]]);
        assert_eq!(p1.find_feasible(&limits()).unwrap(), None);
        let p2 = BindingProblem::new(2, 100, vec![vec![60], vec![50]]);
        let b = p2.find_feasible(&limits()).unwrap().expect("feasible");
        assert_ne!(b.bus_of(0), b.bus_of(1));
    }

    #[test]
    fn per_window_not_aggregate() {
        // Aggregate demand fits easily, but both peak in window 0.
        let p = BindingProblem::new(1, 100, vec![vec![80, 0], vec![30, 0]]);
        assert_eq!(p.find_feasible(&limits()).unwrap(), None);
        // Shifting the peaks apart makes one bus fine.
        let p = BindingProblem::new(1, 100, vec![vec![80, 0], vec![0, 30]]);
        assert!(p.find_feasible(&limits()).unwrap().is_some());
    }

    #[test]
    fn conflicts_respected() {
        let p = BindingProblem::new(2, 100, vec![vec![10], vec![10], vec![10]])
            .with_conflict(0, 1)
            .with_conflict(1, 2);
        let b = p.find_feasible(&limits()).unwrap().expect("feasible");
        assert_ne!(b.bus_of(0), b.bus_of(1));
        assert_ne!(b.bus_of(1), b.bus_of(2));
    }

    #[test]
    fn optimize_cancellable_matches_optimize_when_uncancelled() {
        let p = BindingProblem::new(2, 100, vec![vec![60, 10], vec![50, 20], vec![10, 70]])
            .with_conflict(0, 2);
        let plain = p.optimize(&limits()).unwrap().expect("feasible");
        let token = CancelToken::new();
        let cancellable = p
            .optimize_cancellable(&limits(), &token)
            .unwrap()
            .expect("feasible");
        assert_eq!(plain, cancellable);
        // A pre-raised token interrupts an instance big enough to reach
        // the poll checkpoint (tiny searches may finish before polling).
        let hard = BindingProblem::new(5, 100, vec![vec![18]; 24]).with_maxtb(4);
        let raised = CancelToken::new();
        raised.cancel();
        let unpruned = SolveLimits::default().with_pruning(PruningLevel::Off);
        assert!(matches!(
            hard.optimize_cancellable(&unpruned, &raised),
            Err(SearchInterrupted::Cancelled)
        ));
    }

    #[test]
    fn conflict_triangle_needs_three_buses() {
        let demands = vec![vec![1], vec![1], vec![1]];
        let triangle = |p: BindingProblem| {
            p.with_conflict(0, 1)
                .with_conflict(1, 2)
                .with_conflict(0, 2)
        };
        let p2 = triangle(BindingProblem::new(2, 100, demands.clone()));
        assert_eq!(p2.find_feasible(&limits()).unwrap(), None);
        let p3 = triangle(BindingProblem::new(3, 100, demands));
        assert!(p3.find_feasible(&limits()).unwrap().is_some());
    }

    #[test]
    fn maxtb_enforced() {
        let p = BindingProblem::new(1, 1000, vec![vec![1]; 5]).with_maxtb(4);
        assert_eq!(p.find_feasible(&limits()).unwrap(), None);
        let p = BindingProblem::new(2, 1000, vec![vec![1]; 5]).with_maxtb(4);
        let b = p.find_feasible(&limits()).unwrap().expect("feasible");
        let buses = b.buses(2);
        assert!(buses.iter().all(|bus| bus.len() <= 4));
    }

    #[test]
    fn optimize_minimises_max_overlap() {
        // Four targets, two buses, capacity ample. Overlaps: (0,1)=100,
        // (2,3)=90, everything else 10. Optimal: split 0|1 and 2|3 →
        // pairs (0,2)/(1,3) style grouping with max overlap 10.
        let mut p = BindingProblem::new(2, 1000, vec![vec![10]; 4]);
        p.set_overlaps(|i, j| match (i, j) {
            (0, 1) => 100,
            (2, 3) => 90,
            _ => 10,
        });
        let b = p.optimize(&limits()).unwrap().expect("feasible");
        assert_ne!(b.bus_of(0), b.bus_of(1));
        assert_ne!(b.bus_of(2), b.bus_of(3));
        // Each bus holds two targets forming one cross pair of overlap 10.
        assert_eq!(b.max_bus_overlap(), 10);
        assert_eq!(p.verify(&b), Some(b.max_bus_overlap()));
    }

    #[test]
    fn optimize_matches_verify() {
        let mut p = BindingProblem::new(
            3,
            100,
            vec![vec![40, 10], vec![30, 20], vec![20, 60], vec![10, 30]],
        );
        p.set_overlaps(|i, j| ((i + 1) * (j + 1)) as u64);
        let b = p.optimize(&limits()).unwrap().expect("feasible");
        assert_eq!(p.verify(&b), Some(b.max_bus_overlap()));
    }

    #[test]
    fn optimize_is_no_worse_than_any_feasible() {
        // Exhaustively enumerate all assignments for a small instance and
        // confirm optimality.
        let mut p = BindingProblem::new(2, 100, vec![vec![30], vec![30], vec![30], vec![5]]);
        p.set_overlaps(|i, j| (7 * (i + 1) + 3 * (j + 1)) as u64);
        let best = p.optimize(&limits()).unwrap().expect("feasible");
        let mut brute = u64::MAX;
        for mask in 0..(1u32 << 4) {
            let assignment: Vec<usize> = (0..4).map(|t| ((mask >> t) & 1) as usize).collect();
            let candidate = Binding {
                assignment,
                max_bus_overlap: 0,
            };
            if let Some(ov) = p.verify(&candidate) {
                brute = brute.min(ov);
            }
        }
        assert_eq!(best.max_bus_overlap(), brute);
    }

    #[test]
    fn empty_problem() {
        let p = BindingProblem::new(2, 100, Vec::new());
        let b = p.find_feasible(&limits()).unwrap().expect("feasible");
        assert!(b.assignment().is_empty());
        assert_eq!(b.max_bus_overlap(), 0);
    }

    #[test]
    fn node_limit_is_honest() {
        // Big enough to not finish in 3 nodes.
        let p = BindingProblem::new(4, 100, vec![vec![26]; 12]);
        let err = p
            .find_feasible(&SolveLimits::nodes(3))
            .expect_err("should exceed");
        assert_eq!(err.limit, 3);
        assert!(err.to_string().contains("3-node"));
    }

    #[test]
    fn cancellable_search_matches_plain_when_not_cancelled() {
        let mut p = BindingProblem::new(3, 100, vec![vec![60], vec![50], vec![40], vec![30]]);
        p.add_conflict(0, 1);
        let token = CancelToken::new();
        let cancellable = p
            .find_feasible_cancellable(&limits(), &token)
            .expect("within limits");
        let plain = p.find_feasible(&limits()).expect("within limits");
        assert_eq!(cancellable, plain);
    }

    #[test]
    fn pre_raised_token_cancels_hard_instances() {
        // An instance whose infeasibility proof takes far more than one
        // poll interval: the pre-raised token must stop it early. Pruning
        // is off because the per-node bounds prove this maxtb-pigeonhole
        // instance infeasible before the first poll — the very behaviour
        // `bounds` exists for, but not what this test exercises.
        let n = 24usize;
        let p = BindingProblem::new(5, 100, vec![vec![18]; n]).with_maxtb(4);
        let token = CancelToken::new();
        token.cancel();
        let limits = SolveLimits::default().with_pruning(PruningLevel::Off);
        match p.find_feasible_cancellable(&limits, &token) {
            Err(SearchInterrupted::Cancelled) => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn ancestor_cancellation_reaches_the_search() {
        // The executor hands tasks child tokens; cancelling the scope's
        // root must interrupt a search polling only the child.
        let n = 24usize;
        let p = BindingProblem::new(5, 100, vec![vec![18]; n]).with_maxtb(4);
        let root = CancelToken::new();
        let child = root.child();
        root.cancel();
        let limits = SolveLimits::default().with_pruning(PruningLevel::Off);
        match p.find_feasible_cancellable(&limits, &child) {
            Err(SearchInterrupted::Cancelled) => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn budget_error_survives_the_cancellable_path() {
        let p = BindingProblem::new(4, 100, vec![vec![26]; 12]);
        let token = CancelToken::new();
        match p.find_feasible_cancellable(&SolveLimits::nodes(3), &token) {
            Err(SearchInterrupted::Budget(e)) => assert_eq!(e.limit, 3),
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "demands 150 > capacity 100")]
    fn oversized_demand_panics() {
        let _ = BindingProblem::new(1, 100, vec![vec![150]]);
    }

    #[test]
    fn variable_capacities_respected() {
        // Window 0 is tight (cap 50), window 1 roomy (cap 200): targets
        // peaking together in window 0 must split even though a uniform
        // 200-capacity plan would let them share.
        let p =
            BindingProblem::with_capacities(2, vec![50, 200], vec![vec![30, 100], vec![30, 80]]);
        let b = p.find_feasible(&limits()).unwrap().expect("feasible");
        assert_ne!(b.bus_of(0), b.bus_of(1));
        assert_eq!(p.verify(&b), Some(0));

        let uniform = BindingProblem::new(2, 200, vec![vec![30, 100], vec![30, 80]]);
        let bu = uniform.find_feasible(&limits()).unwrap().expect("feasible");
        // With uniform capacity 200 sharing is allowed.
        assert!(uniform
            .verify(&Binding::from_assignment(vec![0, 0]))
            .is_some());
        assert!(uniform.verify(&bu).is_some());
    }

    #[test]
    fn capacity_accessor_reports_plan() {
        let p = BindingProblem::with_capacities(1, vec![10, 20], vec![vec![5, 15]]);
        assert_eq!(p.capacity(0), 10);
        assert_eq!(p.capacity(1), 20);
        assert_eq!(p.window_size(), 20); // max capacity
    }

    #[test]
    #[should_panic(expected = "one capacity per window")]
    fn capacity_arity_checked() {
        let _ = BindingProblem::with_capacities(1, vec![10], vec![vec![5, 5]]);
    }

    #[test]
    fn verify_rejects_bad_bindings() {
        let p = BindingProblem::new(2, 100, vec![vec![60], vec![60]]).with_conflict(0, 1);
        // Same bus: violates both capacity and conflict.
        let bad = Binding {
            assignment: vec![0, 0],
            max_bus_overlap: 0,
        };
        assert_eq!(p.verify(&bad), None);
        // Out-of-range bus.
        let oob = Binding {
            assignment: vec![0, 5],
            max_bus_overlap: 0,
        };
        assert_eq!(p.verify(&oob), None);
        // Wrong arity.
        let short = Binding {
            assignment: vec![0],
            max_bus_overlap: 0,
        };
        assert_eq!(p.verify(&short), None);
    }

    #[test]
    fn used_buses_counts_distinct() {
        let b = Binding {
            assignment: vec![0, 2, 0, 2],
            max_bus_overlap: 0,
        };
        assert_eq!(b.used_buses(), 2);
        assert_eq!(b.buses(3)[0], vec![0, 2]);
        assert_eq!(b.buses(3)[2], vec![1, 3]);
    }

    #[test]
    fn verified_warm_start_short_circuits_with_recomputed_objective() {
        let mut p = BindingProblem::new(2, 1000, vec![vec![10]; 4]);
        p.set_overlaps(|i, j| match (i, j) {
            (0, 1) => 100,
            (2, 3) => 90,
            _ => 10,
        });
        let cold = p.optimize(&limits()).unwrap().expect("feasible");
        // Offer the cold answer back with a deliberately stale objective:
        // the solver must recompute, not trust it.
        let warm = WarmStart {
            binding: Binding::from_assignment_with_overlap(cold.assignment().to_vec(), 0),
            objective: 999,
        };
        let wl = SolveLimits::default().with_warm_start(warm);
        let f = p.find_feasible(&wl).unwrap().expect("feasible");
        assert_eq!(f.assignment(), cold.assignment());
        assert_eq!(f.max_bus_overlap(), cold.max_bus_overlap());
        // Even a zero-node budget answers: the verify path does no search.
        let starved = SolveLimits::nodes(0).with_warm_start(WarmStart::new(cold.clone()));
        assert!(p.find_feasible(&starved).unwrap().is_some());
        // Optimisation seeded by the warm incumbent reaches the same
        // optimum.
        let o = p.optimize(&wl).unwrap().expect("feasible");
        assert_eq!(o.max_bus_overlap(), cold.max_bus_overlap());
        assert_eq!(p.verify(&o), Some(o.max_bus_overlap()));
    }

    #[test]
    fn unverifiable_warm_start_keeps_verdicts() {
        // The warm binding violates a conflict added after it was found:
        // verify fails, the search runs cold with a value-ordering hint,
        // and every verdict matches the cold search.
        let base = BindingProblem::new(2, 100, vec![vec![10], vec![10], vec![10]]);
        let old = base.find_feasible(&limits()).unwrap().expect("feasible");
        let patched = base.clone().with_conflict(0, 1).with_conflict(0, 2);
        let wl = SolveLimits::default().with_warm_start(WarmStart::new(old.clone()));
        let warm_answer = patched.find_feasible(&wl).unwrap();
        let cold_answer = patched.find_feasible(&limits()).unwrap();
        assert_eq!(warm_answer.is_some(), cold_answer.is_some());
        let b = warm_answer.expect("feasible");
        assert_eq!(patched.verify(&b), Some(b.max_bus_overlap()));
        // An infeasible patch stays infeasible with a warm hint.
        let infeasible = BindingProblem::new(1, 100, vec![vec![60], vec![50]]);
        let wl2 = SolveLimits::default()
            .with_warm_start(WarmStart::new(Binding::from_assignment(vec![0, 0])));
        assert_eq!(infeasible.find_feasible(&wl2).unwrap(), None);
    }

    #[test]
    fn warm_start_tolerates_arity_mismatch() {
        // Previous binding saw 2 targets; the delta appended a third. The
        // warm start demotes to an ordering hint and the verdict holds.
        let p = BindingProblem::new(2, 100, vec![vec![40], vec![40], vec![40]]);
        let wl = SolveLimits::default()
            .with_warm_start(WarmStart::new(Binding::from_assignment(vec![0, 1])));
        let b = p.find_feasible(&wl).unwrap().expect("feasible");
        assert_eq!(p.verify(&b), Some(b.max_bus_overlap()));
        assert!(
            p.find_feasible(&limits()).unwrap().is_some(),
            "cold verdict agrees"
        );
    }

    #[test]
    fn warm_start_optimum_matches_cold_optimum() {
        // The warm incumbent is feasible but suboptimal: the improving
        // search below it must still reach the cold optimum.
        let mut p = BindingProblem::new(2, 1000, vec![vec![10]; 4]);
        p.set_overlaps(|i, j| match (i, j) {
            (0, 1) => 100,
            (2, 3) => 90,
            _ => 10,
        });
        let cold = p.optimize(&limits()).unwrap().expect("feasible");
        // All-on-different... 2 buses, 4 targets: put the heavy pairs
        // together (suboptimal: objective 100).
        let suboptimal = Binding::from_assignment(vec![0, 0, 1, 1]);
        assert_eq!(p.verify(&suboptimal), Some(100));
        let wl = SolveLimits::default().with_warm_start(WarmStart::new(suboptimal));
        let warm = p.optimize(&wl).unwrap().expect("feasible");
        assert_eq!(warm.max_bus_overlap(), cold.max_bus_overlap());
    }

    #[test]
    fn tight_packing_found() {
        // 6 targets of demand 50 into 3 buses of 100: perfect packing.
        let p = BindingProblem::new(3, 100, vec![vec![50]; 6]);
        let b = p.find_feasible(&limits()).unwrap().expect("feasible");
        let buses = b.buses(3);
        assert!(buses.iter().all(|bus| bus.len() == 2));
    }

    #[test]
    fn infeasible_packing_proven() {
        // 7 targets of demand 50 into 3 buses of 100 → needs 4.
        let p = BindingProblem::new(3, 100, vec![vec![50]; 7]);
        assert_eq!(p.find_feasible(&limits()).unwrap(), None);
    }
}
