//! Generic-MILP encoding of the crossbar binding problem — a direct
//! transcription of the paper's Eq. (3)–(9) and the `maxov` objective of
//! Eq. (11).
//!
//! The specialised solver in [`crate::binding`] is the production path;
//! this encoding exists to *cross-validate* it through the independent
//! simplex/branch-and-bound stack, exactly as one would sanity-check a
//! custom solver against CPLEX. It is exercised extensively in tests and
//! available for users who want to inspect the raw MILP.

// Index-based loops here mirror the i/j/k subscripts of the paper's
// equations on purpose; iterator forms obscure the transcription.
#![allow(clippy::needless_range_loop)]

use crate::binding::{Binding, BindingProblem};
use crate::bounds::{CombinedBound, LowerBound, NodeState, PruningLevel};
use crate::branch_bound::{solve, MilpOptions, MilpOutcome, NodeCut};
use crate::model::{Cmp, LinExpr, Model, Sense, VarId};
use crate::simplex::BoundOverrides;
use std::sync::Arc;

/// The encoded model plus the handle matrix `x[target][bus]` needed to
/// decode solutions.
#[derive(Debug, Clone)]
pub struct EncodedCrossbar {
    /// The MILP.
    pub model: Model,
    /// Binding variables `x(i,k)` (Definition 3).
    pub x: Vec<Vec<VarId>>,
}

/// Encodes the feasibility MILP (Eq. 3, 4, 7, 8, 9 — the paper's MILP-1).
#[must_use]
pub fn encode_feasibility(problem: &BindingProblem) -> EncodedCrossbar {
    let mut model = Model::new(Sense::Minimize);
    let x = make_binding_vars(&mut model, problem);
    add_structural_constraints(&mut model, problem, &x);
    EncodedCrossbar { model, x }
}

/// Encodes the optimal-binding MILP (adds the `sb` linearisation of Eq. 5,
/// the per-bus overlap rows and the `maxov` objective — the paper's
/// MILP-2, Eq. 11).
#[must_use]
pub fn encode_optimization(problem: &BindingProblem) -> EncodedCrossbar {
    let mut model = Model::new(Sense::Minimize);
    let x = make_binding_vars(&mut model, problem);
    add_structural_constraints(&mut model, problem, &x);

    let n = problem.num_targets();
    let maxov = model.continuous_var("maxov", 0.0, f64::INFINITY);

    // sb(i,j,k) only for pairs that can actually share a bus and carry
    // overlap weight; everything else contributes nothing to the objective.
    for k in 0..problem.num_buses() {
        let mut bus_overlap = LinExpr::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let om = problem.overlap(i, j);
                if om == 0 || problem.conflicts(i, j) {
                    continue;
                }
                let sb = model.binary_var(format!("sb_{i}_{j}_{k}"));
                // Eq. 5: x_i + x_j - 1 <= sb  and  sb <= (x_i + x_j) / 2.
                model.constrain(
                    LinExpr::new()
                        .term(x[i][k], 1.0)
                        .term(x[j][k], 1.0)
                        .term(sb, -1.0),
                    Cmp::Le,
                    1.0,
                );
                model.constrain(
                    LinExpr::new()
                        .term(sb, 1.0)
                        .term(x[i][k], -0.5)
                        .term(x[j][k], -0.5),
                    Cmp::Le,
                    0.0,
                );
                bus_overlap.add_term(sb, om as f64);
            }
        }
        // Σ om(i,j)·sb(i,j,k) ≤ maxov for every bus k (Eq. 11).
        bus_overlap.add_term(maxov, -1.0);
        model.constrain(bus_overlap, Cmp::Le, 0.0);
    }
    model.set_objective(LinExpr::new().term(maxov, 1.0));
    EncodedCrossbar { model, x }
}

fn make_binding_vars(model: &mut Model, problem: &BindingProblem) -> Vec<Vec<VarId>> {
    (0..problem.num_targets())
        .map(|i| {
            (0..problem.num_buses())
                .map(|k| model.binary_var(format!("x_{i}_{k}")))
                .collect()
        })
        .collect()
}

fn add_structural_constraints(model: &mut Model, problem: &BindingProblem, x: &[Vec<VarId>]) {
    let n = problem.num_targets();
    let b = problem.num_buses();

    // Eq. 3: every target on exactly one bus.
    for row in x.iter().take(n) {
        let mut sum = LinExpr::new();
        for &v in row {
            sum.add_term(v, 1.0);
        }
        model.constrain(sum, Cmp::Eq, 1.0);
    }

    // Eq. 4: per-window bus bandwidth.
    for k in 0..b {
        for m in 0..problem.num_windows() {
            let mut load = LinExpr::new();
            for (i, row) in x.iter().enumerate().take(n) {
                let d = problem.demand(i, m);
                if d > 0 {
                    load.add_term(row[k], d as f64);
                }
            }
            if !load.terms().is_empty() {
                model.constrain(load, Cmp::Le, problem.capacity(m) as f64);
            }
        }
    }

    // Eq. 7 (via Eq. 2): conflicting targets never share a bus. The bitset
    // graph enumerates exactly the conflicting pairs, so dense graphs no
    // longer pay an n² probe loop here.
    for (i, j) in problem.conflict_pairs() {
        for k in 0..b {
            model.constrain(
                LinExpr::new().term(x[i][k], 1.0).term(x[j][k], 1.0),
                Cmp::Le,
                1.0,
            );
        }
    }

    // Eq. 8: at most maxtb targets per bus.
    if problem.maxtb() < n {
        for k in 0..b {
            let mut count = LinExpr::new();
            for row in x.iter().take(n) {
                count.add_term(row[k], 1.0);
            }
            model.constrain(count, Cmp::Le, problem.maxtb() as f64);
        }
    }
}

/// Decodes a MILP solution into a [`Binding`], recomputing the objective
/// through [`BindingProblem::verify`].
#[must_use]
pub fn decode(
    problem: &BindingProblem,
    encoded: &EncodedCrossbar,
    values: &[f64],
) -> Option<Binding> {
    let mut assignment = vec![usize::MAX; problem.num_targets()];
    for (i, row) in encoded.x.iter().enumerate() {
        for (k, &v) in row.iter().enumerate() {
            if values[v.index()] > 0.5 {
                if assignment[i] != usize::MAX {
                    return None; // two buses claimed — invalid
                }
                assignment[i] = k;
            }
        }
        if assignment[i] == usize::MAX {
            return None;
        }
    }
    let candidate = Binding::from_assignment(assignment);
    problem
        .verify(&candidate)
        .map(|ov| Binding::from_assignment_with_overlap(candidate.assignment().to_vec(), ov))
}

/// The per-node combinatorial cut for a crossbar encoding: rebuilds the
/// partial target→bus assignment from the binaries the branching has
/// fixed to 1 and asks the clique-cover + bandwidth-packing bounds of
/// [`crate::bounds`] whether any feasible completion can still exist.
/// Binaries merely fixed to 0 are ignored — dropping constraints only
/// weakens the bound, so admissibility is preserved.
#[derive(Debug)]
struct CrossbarCliqueCut {
    problem: BindingProblem,
    x: Vec<Vec<VarId>>,
    /// Reused bound scratch: the incompatibility rows inside are keyed on
    /// the owned problem (whose address is stable behind the `Arc`), so
    /// they are derived once on the first node instead of per node.
    scratch: std::sync::Mutex<CombinedBound>,
}

impl NodeCut for CrossbarCliqueCut {
    fn prune(&self, model: &Model, overrides: &BoundOverrides) -> bool {
        let mut bound_pairs = Vec::new();
        for (i, row) in self.x.iter().enumerate() {
            for (k, &v) in row.iter().enumerate() {
                let (lb0, ub0) = model.bounds(v);
                let (lb, _) = overrides.bounds_for(v.index(), lb0, ub0);
                if lb > 0.5 {
                    bound_pairs.push((i, k));
                    break;
                }
            }
        }
        let state = NodeState::from_partial(&self.problem, &bound_pairs);
        let mut bound = self.scratch.lock().expect("cut scratch poisoned");
        bound.buses_needed(&state.context(&self.problem)) > self.problem.num_buses()
    }
}

/// Builds the per-node clique-cover/bandwidth cut for an encoded crossbar
/// — pass it as [`MilpOptions::node_cut`] to prune the generic search
/// with the same admissible bounds the specialised solver uses.
#[must_use]
pub fn clique_cut(problem: &BindingProblem, encoded: &EncodedCrossbar) -> Arc<dyn NodeCut> {
    Arc::new(CrossbarCliqueCut {
        problem: problem.clone(),
        x: encoded.x.clone(),
        scratch: std::sync::Mutex::new(CombinedBound::default()),
    })
}

fn node_cut_for(
    problem: &BindingProblem,
    encoded: &EncodedCrossbar,
    pruning: PruningLevel,
) -> Option<Arc<dyn NodeCut>> {
    match pruning {
        PruningLevel::Off => None,
        // The generic path has no candidate ordering to vary, so
        // `Aggressive` degenerates to `Standard` here.
        PruningLevel::Standard | PruningLevel::Aggressive => Some(clique_cut(problem, encoded)),
    }
}

/// Solves MILP-1 (feasibility) through the generic stack, with the
/// default ([`PruningLevel::Standard`]) per-node cut.
#[must_use]
pub fn solve_feasibility_milp(problem: &BindingProblem) -> Option<Binding> {
    solve_feasibility_milp_with(problem, PruningLevel::default())
}

/// [`solve_feasibility_milp`] at an explicit pruning level.
#[must_use]
pub fn solve_feasibility_milp_with(
    problem: &BindingProblem,
    pruning: PruningLevel,
) -> Option<Binding> {
    let encoded = encode_feasibility(problem);
    let options = MilpOptions {
        feasibility_only: true,
        node_cut: node_cut_for(problem, &encoded, pruning),
        ..MilpOptions::default()
    };
    match solve(&encoded.model, &options) {
        MilpOutcome::Optimal { values, .. } => decode(problem, &encoded, &values),
        _ => None,
    }
}

/// Solves MILP-2 (minimise `maxov`) through the generic stack, with the
/// default ([`PruningLevel::Standard`]) per-node cut — previously this
/// path only bounded against the incumbent objective.
#[must_use]
pub fn solve_optimization_milp(problem: &BindingProblem) -> Option<Binding> {
    solve_optimization_milp_with(problem, PruningLevel::default())
}

/// [`solve_optimization_milp`] at an explicit pruning level.
#[must_use]
pub fn solve_optimization_milp_with(
    problem: &BindingProblem,
    pruning: PruningLevel,
) -> Option<Binding> {
    let encoded = encode_optimization(problem);
    let options = MilpOptions {
        node_cut: node_cut_for(problem, &encoded, pruning),
        ..MilpOptions::default()
    };
    match solve(&encoded.model, &options) {
        MilpOutcome::Optimal { values, .. } => decode(problem, &encoded, &values),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::SolveLimits;

    #[test]
    fn encoding_sizes() {
        let p = BindingProblem::new(2, 100, vec![vec![10, 20], vec![30, 5], vec![15, 15]]);
        let enc = encode_feasibility(&p);
        // 3 targets × 2 buses binding vars.
        assert_eq!(enc.model.num_vars(), 6);
        // 3 assignment rows + 2 buses × 2 windows bandwidth rows.
        assert_eq!(enc.model.num_constraints(), 3 + 4);
    }

    #[test]
    fn feasibility_agrees_with_specialised_solver() {
        let cases: Vec<BindingProblem> = vec![
            BindingProblem::new(1, 100, vec![vec![60], vec![50]]),
            BindingProblem::new(2, 100, vec![vec![60], vec![50]]),
            BindingProblem::new(2, 100, vec![vec![60], vec![50], vec![45]]),
            BindingProblem::new(3, 100, vec![vec![60], vec![50], vec![45]]).with_conflict(0, 1),
            BindingProblem::new(2, 100, vec![vec![10]; 5]).with_maxtb(2),
            BindingProblem::new(3, 100, vec![vec![10]; 5]).with_maxtb(2),
        ];
        for (idx, p) in cases.iter().enumerate() {
            let specialised = p.find_feasible(&SolveLimits::default()).unwrap();
            let generic = solve_feasibility_milp(p);
            assert_eq!(
                specialised.is_some(),
                generic.is_some(),
                "case {idx}: solver disagreement"
            );
            if let Some(b) = generic {
                assert!(p.verify(&b).is_some(), "case {idx}: invalid MILP binding");
            }
        }
    }

    #[test]
    fn optimization_agrees_with_specialised_solver() {
        let mut p = BindingProblem::new(2, 1000, vec![vec![10]; 4]);
        p.set_overlaps(|i, j| match (i, j) {
            (0, 1) => 100,
            (2, 3) => 90,
            _ => 10,
        });
        let specialised = p
            .optimize(&SolveLimits::default())
            .unwrap()
            .expect("feasible");
        let generic = solve_optimization_milp(&p).expect("feasible");
        assert_eq!(
            specialised.max_bus_overlap(),
            generic.max_bus_overlap(),
            "objective mismatch between solvers"
        );
    }

    #[test]
    fn infeasible_detected_by_milp() {
        let p = BindingProblem::new(1, 100, vec![vec![60], vec![50]]);
        assert!(solve_feasibility_milp(&p).is_none());
    }

    #[test]
    fn decode_rejects_garbage() {
        let p = BindingProblem::new(2, 100, vec![vec![10], vec![10]]);
        let enc = encode_feasibility(&p);
        // No bus selected for target 1.
        let mut values = vec![0.0; enc.model.num_vars()];
        values[enc.x[0][0].index()] = 1.0;
        assert!(decode(&p, &enc, &values).is_none());
        // Two buses selected for target 0.
        values[enc.x[0][1].index()] = 1.0;
        values[enc.x[1][0].index()] = 1.0;
        assert!(decode(&p, &enc, &values).is_none());
    }
}
