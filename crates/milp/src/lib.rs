//! Exact 0/1 MILP solving substrate for STbus crossbar synthesis.
//!
//! The paper formulates crossbar configuration and binding as two Mixed
//! Integer Linear Programs (Eq. 3–9 plus the `maxov` objective of Eq. 11)
//! and solves them with the commercial CPLEX package. This crate replaces
//! CPLEX with two cooperating exact solvers:
//!
//! * a **generic MILP layer** ([`model::Model`], [`simplex`],
//!   [`branch_bound`]) — a dense two-phase primal simplex for LP
//!   relaxations driven by a branch-and-bound search over the integer
//!   variables; and
//! * a **specialised binding solver** ([`binding`]) — an exact
//!   backtracking search over target→bus assignments with per-window
//!   bandwidth propagation, **word-parallel conflict forward-checking**
//!   (each bus carries an incremental member bitset, so the Eq. 2/7
//!   feasibility of a candidate is a handful of `AND`s against its
//!   [`stbus_traffic::ConflictGraph`] row) and bus symmetry breaking, plus
//!   a branch-and-bound mode minimising the maximum per-bus overlap (the
//!   paper's MILP-2). The pre-refactor dense-matrix search served as the
//!   reference the bitset solver was proven bit-identical to for three
//!   releases and is now retired (its final measured speedups are
//!   snapshotted in `crates/bench/BENCHMARKS.md`); the generic MILP layer
//!   remains the sole independent cross-check.
//!
//! Long-running searches are cooperatively cancellable: the speculative
//! callers in `stbus-core` (probe scheduler, batch runner) thread a
//! [`CancelToken`] from the shared executor through
//! [`BindingProblem::find_feasible_cancellable`] and the heuristic's
//! annealing repair, so work whose answer can no longer be consumed is
//! abandoned at the next poll instead of finishing a proof nobody reads.
//!
//! Both return provably optimal/feasible answers; the generic layer
//! cross-validates the specialised one in the test-suite. The instances the
//! methodology produces are small (≤ 32 targets — the largest STbus
//! crossbar — and a few thousand binaries, §6), so exact solving is fast.
//!
//! # Example
//!
//! ```
//! use stbus_milp::binding::{BindingProblem, SolveLimits};
//!
//! // Three targets, two buses, one window: demands 60+50+40 over
//! // capacity 100 force a split; targets 0 and 1 conflict.
//! let problem = BindingProblem::new(2, 100, vec![vec![60], vec![50], vec![40]])
//!     .with_conflict(0, 1);
//! let binding = problem
//!     .find_feasible(&SolveLimits::default())
//!     .expect("within limits")
//!     .expect("feasible");
//! assert_ne!(binding.bus_of(0), binding.bus_of(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binding;
pub mod bounds;
pub mod branch_bound;
pub mod crossbar;
pub mod heuristic;
pub mod model;
pub mod simplex;

pub use binding::{
    Binding, BindingProblem, NodeLimitExceeded, SearchInterrupted, SearchLevel, SearchStats,
    SolveLimits, WarmStart,
};
pub use bounds::{
    BandwidthPackingBound, CliqueCoverBound, CombinedBound, LowerBound, NodeState, PruneContext,
    PruningLevel,
};
pub use branch_bound::{solve, MilpOptions, MilpOutcome, NodeCut};
pub use heuristic::{solve_heuristic, solve_heuristic_cancellable, HeuristicOptions};
pub use model::{Cmp, LinExpr, Model, Sense, VarId};
pub use stbus_exec::CancelToken;
