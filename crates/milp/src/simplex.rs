//! Dense two-phase primal simplex for LP relaxations.
//!
//! The LP sizes produced by the crossbar MILPs are small (hundreds of rows
//! and columns at most), so a dense tableau implementation is both simple
//! and fast enough. Termination is guaranteed by switching from Dantzig
//! pricing to Bland's rule after a fixed number of iterations.

// Tableau pivoting is textbook row/column index arithmetic; iterator
// rewrites of these loops hide the math without helping the borrow
// checker. The row triple is local plumbing, not an API type.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

use crate::model::{Cmp, Model, Sense, VarKind};

/// Absolute numerical tolerance used throughout the solver.
pub const TOL: f64 = 1e-8;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimum found: variable values (in the model's original space) and
    /// the objective value.
    Optimal {
        /// Value per variable, indexed by [`VarId::index`](crate::VarId::index).
        values: Vec<f64>,
        /// Objective value in the model's sense.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
}

/// Extra upper/lower bounds imposed on single variables (used by branch &
/// bound to split on fractional integers without rebuilding the model).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoundOverrides {
    entries: Vec<(usize, f64, f64)>,
}

impl BoundOverrides {
    /// No overrides.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Restricts variable `var` to `[lb, ub]` (intersected with its model
    /// bounds).
    pub fn restrict(&mut self, var: usize, lb: f64, ub: f64) {
        self.entries.push((var, lb, ub));
    }

    /// The effective bounds of `var` after intersecting the overrides with
    /// the base bounds `[lb, ub]`.
    #[must_use]
    pub fn bounds_for(&self, var: usize, lb: f64, ub: f64) -> (f64, f64) {
        self.apply(var, lb, ub)
    }

    fn apply(&self, var: usize, lb: f64, ub: f64) -> (f64, f64) {
        let mut bounds = (lb, ub);
        for &(v, l, u) in &self.entries {
            if v == var {
                bounds.0 = bounds.0.max(l);
                bounds.1 = bounds.1.min(u);
            }
        }
        bounds
    }
}

/// Solves the LP relaxation of `model` (integrality dropped, bounds kept),
/// with optional per-variable bound overrides.
#[must_use]
pub fn solve_lp(model: &Model, overrides: &BoundOverrides) -> LpOutcome {
    let n_struct = model.num_vars();

    // Effective bounds after overrides; reject empty boxes immediately.
    let mut lbs = vec![0.0f64; n_struct];
    let mut ubs = vec![f64::INFINITY; n_struct];
    for v in 0..n_struct {
        let (lb, ub) = match model.kind(crate::model::VarId(v)) {
            VarKind::Binary => (0.0, 1.0),
            VarKind::Continuous { lb, ub } => (lb, ub),
        };
        let (lb, ub) = overrides.apply(v, lb, ub);
        if lb > ub + TOL {
            return LpOutcome::Infeasible;
        }
        lbs[v] = lb;
        ubs[v] = ub;
    }

    // Shift x = lb + x' so every structural variable is ≥ 0; finite upper
    // bounds become explicit ≤ rows.
    #[derive(Clone, Copy)]
    enum RowKind {
        Le,
        Ge,
        Eq,
    }
    let mut rows: Vec<(Vec<(usize, f64)>, RowKind, f64)> = Vec::new();
    for c in model.constraints() {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        let mut rhs = c.rhs - c.expr.constant();
        for &(v, coef) in c.expr.terms() {
            rhs -= coef * lbs[v.index()];
            coeffs.push((v.index(), coef));
        }
        let kind = match c.cmp {
            Cmp::Le => RowKind::Le,
            Cmp::Ge => RowKind::Ge,
            Cmp::Eq => RowKind::Eq,
        };
        rows.push((coeffs, kind, rhs));
    }
    for v in 0..n_struct {
        if ubs[v].is_finite() {
            let span = ubs[v] - lbs[v];
            rows.push((vec![(v, 1.0)], RowKind::Le, span));
        }
    }

    let m = rows.len();
    // Column layout: structural | slack/surplus | artificial.
    let mut n_slack = 0usize;
    for (_, kind, _) in &rows {
        if !matches!(kind, RowKind::Eq) {
            n_slack += 1;
        }
    }
    // Artificials are allocated lazily per row below.
    let mut tableau: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = vec![usize::MAX; m];
    let mut n_total = n_struct + n_slack; // artificials appended after
    let mut artificial_cols: Vec<usize> = Vec::new();

    let mut slack_idx = 0usize;
    let mut row_data: Vec<(Vec<f64>, f64)> = Vec::with_capacity(m);
    let mut row_needs_artificial: Vec<bool> = Vec::with_capacity(m);
    let mut row_slack_col: Vec<Option<usize>> = Vec::with_capacity(m);
    for (coeffs, kind, rhs) in &rows {
        let mut a = vec![0.0f64; n_struct + n_slack];
        for &(v, coef) in coeffs {
            a[v] += coef;
        }
        let mut rhs = *rhs;
        let mut kind = *kind;
        if rhs < 0.0 {
            for x in &mut a {
                *x = -*x;
            }
            rhs = -rhs;
            kind = match kind {
                RowKind::Le => RowKind::Ge,
                RowKind::Ge => RowKind::Le,
                RowKind::Eq => RowKind::Eq,
            };
        }
        let (needs_artificial, slack_col) = match kind {
            RowKind::Le => {
                let col = n_struct + slack_idx;
                a[col] = 1.0;
                slack_idx += 1;
                (false, Some(col))
            }
            RowKind::Ge => {
                let col = n_struct + slack_idx;
                a[col] = -1.0;
                slack_idx += 1;
                (true, Some(col))
            }
            RowKind::Eq => (true, None),
        };
        row_data.push((a, rhs));
        row_needs_artificial.push(needs_artificial);
        row_slack_col.push(slack_col);
    }
    // Wait to know the artificial count before building final rows.
    let n_artificial = row_needs_artificial.iter().filter(|&&b| b).count();
    let first_artificial = n_total;
    n_total += n_artificial;
    let mut art_idx = 0usize;
    for (i, (a, rhs)) in row_data.into_iter().enumerate() {
        let mut full = a;
        full.resize(n_total, 0.0);
        if row_needs_artificial[i] {
            let col = first_artificial + art_idx;
            full[col] = 1.0;
            artificial_cols.push(col);
            basis[i] = col;
            art_idx += 1;
        } else {
            basis[i] = row_slack_col[i].expect("Le row has a slack");
        }
        full.push(rhs); // rhs stored as last entry
        tableau.push(full);
    }

    let rhs_col = n_total;

    // --- Phase 1: minimise the sum of artificials. ---
    if n_artificial > 0 {
        let mut cost = vec![0.0f64; n_total + 1];
        for &c in &artificial_cols {
            cost[c] = 1.0;
        }
        canonicalize(&mut cost, &tableau, &basis);
        if !iterate(&mut tableau, &mut cost, &mut basis, rhs_col, &|col| {
            col < n_total
        }) {
            // Phase 1 cannot be unbounded (costs ≥ 0); treat as numeric
            // failure → infeasible.
            return LpOutcome::Infeasible;
        }
        let phase1_obj = -cost[rhs_col];
        if phase1_obj > 1e-6 {
            return LpOutcome::Infeasible;
        }
        // Pivot artificials out of the basis where possible.
        for i in 0..m {
            if artificial_cols.contains(&basis[i]) {
                if let Some(j) = (0..first_artificial).find(|&j| tableau[i][j].abs() > TOL) {
                    pivot(&mut tableau, &mut cost, &mut basis, i, j, rhs_col);
                }
            }
        }
    }

    // --- Phase 2: original objective. ---
    let sense_mul = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0f64; n_total + 1];
    for &(v, coef) in model.objective().terms() {
        cost[v.index()] += sense_mul * coef;
    }
    // Objective constant from shifting: c'·lb handled at extraction time.
    canonicalize(&mut cost, &tableau, &basis);
    let allowed = |col: usize| col < first_artificial;
    if !iterate(&mut tableau, &mut cost, &mut basis, rhs_col, &allowed) {
        return LpOutcome::Unbounded;
    }
    // An artificial stuck in the basis at a positive level means the
    // pivot-out failed numerically; it should be at zero after phase 1.
    for i in 0..m {
        if basis[i] >= first_artificial && tableau[i][rhs_col] > 1e-6 {
            return LpOutcome::Infeasible;
        }
    }

    // Extract structural values (shift lb back in).
    let mut values = lbs.clone();
    for i in 0..m {
        if basis[i] < n_struct {
            values[basis[i]] += tableau[i][rhs_col];
        }
    }
    let objective = model.objective().eval(&values);
    LpOutcome::Optimal { values, objective }
}

/// Prices out the basic columns so reduced costs of basic vars are zero.
fn canonicalize(cost: &mut [f64], tableau: &[Vec<f64>], basis: &[usize]) {
    for (i, &b) in basis.iter().enumerate() {
        let cb = cost[b];
        if cb != 0.0 {
            for (j, c) in cost.iter_mut().enumerate() {
                *c -= cb * tableau[i][j];
            }
        }
    }
}

/// Runs simplex iterations until optimality; returns `false` on
/// unboundedness. `allowed` filters which columns may enter the basis.
fn iterate(
    tableau: &mut [Vec<f64>],
    cost: &mut [f64],
    basis: &mut [usize],
    rhs_col: usize,
    allowed: &dyn Fn(usize) -> bool,
) -> bool {
    const MAX_ITERS: usize = 50_000;
    const BLAND_AFTER: usize = 5_000;
    for iter in 0..MAX_ITERS {
        let bland = iter >= BLAND_AFTER;
        // Entering column.
        let mut entering: Option<usize> = None;
        let mut best = -TOL;
        for j in 0..rhs_col {
            if !allowed(j) {
                continue;
            }
            if cost[j] < -TOL {
                if bland {
                    entering = Some(j);
                    break;
                }
                if cost[j] < best {
                    best = cost[j];
                    entering = Some(j);
                }
            }
        }
        let Some(j) = entering else {
            return true; // optimal
        };
        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for (i, row) in tableau.iter().enumerate() {
            if row[j] > TOL {
                let ratio = row[rhs_col] / row[j];
                let better = ratio < best_ratio - TOL
                    || (ratio < best_ratio + TOL && leave.is_some_and(|l| basis[i] < basis[l]));
                if leave.is_none() || better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(i) = leave else {
            return false; // unbounded
        };
        pivot(tableau, cost, basis, i, j, rhs_col);
    }
    // Iteration limit: report optimal-so-far as unbounded-failure is wrong;
    // treat as numeric failure (infeasible direction is safer than a bogus
    // optimum, but in practice this is unreachable for our instance sizes).
    true
}

/// Pivots on `(row, col)`: row scaling + elimination in all other rows and
/// in the cost row.
fn pivot(
    tableau: &mut [Vec<f64>],
    cost: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    rhs_col: usize,
) {
    let p = tableau[row][col];
    debug_assert!(p.abs() > TOL, "pivot on ~0 element");
    for j in 0..=rhs_col {
        tableau[row][j] /= p;
    }
    for i in 0..tableau.len() {
        if i != row {
            let factor = tableau[i][col];
            if factor.abs() > TOL {
                for j in 0..=rhs_col {
                    tableau[i][j] -= factor * tableau[row][j];
                }
            }
        }
    }
    let factor = cost[col];
    if factor.abs() > TOL {
        for j in 0..=rhs_col {
            cost[j] -= factor * tableau[row][j];
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LinExpr, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_maximize() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 → (4, 0), 12.
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous_var("x", 0.0, f64::INFINITY);
        let y = m.continuous_var("y", 0.0, f64::INFINITY);
        m.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 4.0);
        m.constrain(LinExpr::new().term(x, 1.0).term(y, 3.0), Cmp::Le, 6.0);
        m.set_objective(LinExpr::new().term(x, 3.0).term(y, 2.0));
        match solve_lp(&m, &BoundOverrides::none()) {
            LpOutcome::Optimal { values, objective } => {
                assert_close(objective, 12.0);
                assert_close(values[0], 4.0);
                assert_close(values[1], 0.0);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn simple_minimize_with_ge() {
        // min 2x + 3y s.t. x + y >= 5, x <= 3 → x=3, y=2, obj=12.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 0.0, 3.0);
        let y = m.continuous_var("y", 0.0, f64::INFINITY);
        m.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 5.0);
        m.set_objective(LinExpr::new().term(x, 2.0).term(y, 3.0));
        match solve_lp(&m, &BoundOverrides::none()) {
            LpOutcome::Optimal { values, objective } => {
                assert_close(objective, 12.0);
                assert_close(values[0], 3.0);
                assert_close(values[1], 2.0);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 → x=2, y=1, obj=3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 0.0, f64::INFINITY);
        let y = m.continuous_var("y", 0.0, f64::INFINITY);
        m.constrain(LinExpr::new().term(x, 1.0).term(y, 2.0), Cmp::Eq, 4.0);
        m.constrain(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Eq, 1.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        match solve_lp(&m, &BoundOverrides::none()) {
            LpOutcome::Optimal { values, objective } => {
                assert_close(objective, 3.0);
                assert_close(values[0], 2.0);
                assert_close(values[1], 1.0);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 0.0, 1.0);
        m.constrain(LinExpr::new().term(x, 1.0), Cmp::Ge, 2.0);
        assert_eq!(solve_lp(&m, &BoundOverrides::none()), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().term(x, 1.0));
        assert_eq!(solve_lp(&m, &BoundOverrides::none()), LpOutcome::Unbounded);
    }

    #[test]
    fn respects_nonzero_lower_bounds() {
        // min x + y, x >= 2, y in [1, 10], x + y >= 5 → obj 5 at (4,1)
        // or (2,3): optimum value 5 regardless.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 2.0, f64::INFINITY);
        let y = m.continuous_var("y", 1.0, 10.0);
        m.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 5.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        match solve_lp(&m, &BoundOverrides::none()) {
            LpOutcome::Optimal { values, objective } => {
                assert_close(objective, 5.0);
                assert!(values[0] >= 2.0 - 1e-9);
                assert!(values[1] >= 1.0 - 1e-9);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn bound_overrides_tighten() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous_var("x", 0.0, 10.0);
        m.set_objective(LinExpr::new().term(x, 1.0));
        let mut ov = BoundOverrides::none();
        ov.restrict(0, 0.0, 4.0);
        match solve_lp(&m, &ov) {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 4.0),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn contradictory_overrides_are_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let _ = m.continuous_var("x", 0.0, 10.0);
        let mut ov = BoundOverrides::none();
        ov.restrict(0, 5.0, 10.0);
        ov.restrict(0, 0.0, 2.0);
        assert_eq!(solve_lp(&m, &ov), LpOutcome::Infeasible);
    }

    #[test]
    fn binary_relaxation_is_unit_box() {
        // max x + y over relaxed binaries with x + y <= 1.5 → 1.5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 1.5);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        match solve_lp(&m, &BoundOverrides::none()) {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 1.5),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_handled() {
        // x - y <= -1 with x,y in [0,5]; min x + y → (0,1).
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous_var("x", 0.0, 5.0);
        let y = m.continuous_var("y", 0.0, 5.0);
        m.constrain(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Le, -1.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        match solve_lp(&m, &BoundOverrides::none()) {
            LpOutcome::Optimal { values, objective } => {
                assert_close(objective, 1.0);
                assert_close(values[1], 1.0);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn expression_constant_folded_into_rhs() {
        // (x + 3) <= 5 → x <= 2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous_var("x", 0.0, 10.0);
        m.constrain(LinExpr::new().term(x, 1.0).plus(3.0), Cmp::Le, 5.0);
        m.set_objective(LinExpr::new().term(x, 1.0));
        match solve_lp(&m, &BoundOverrides::none()) {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 2.0),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous_var("x", 0.0, f64::INFINITY);
        let y = m.continuous_var("y", 0.0, f64::INFINITY);
        for k in 1..=6 {
            let kf = k as f64;
            m.constrain(LinExpr::new().term(x, kf).term(y, kf), Cmp::Le, 4.0 * kf);
        }
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        match solve_lp(&m, &BoundOverrides::none()) {
            LpOutcome::Optimal { objective, .. } => assert_close(objective, 4.0),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
