//! Greedy + local-search heuristic for the binding problem.
//!
//! The exact solvers in [`crate::binding`] are the production path for
//! STbus-scale instances (≤ 32 targets). This module provides a
//! polynomial-time alternative for larger design-space sweeps:
//!
//! 1. **Construction** — first-fit-decreasing over targets (by peak window
//!    demand), choosing among feasible buses the one whose *added overlap*
//!    is smallest (a greedy proxy for the MILP-2 objective);
//! 2. **Improvement** — steepest-descent local search over single-target
//!    relocations and pairwise swaps, accepting moves that reduce the
//!    maximum per-bus overlap, until a fixpoint or the move budget runs
//!    out.
//!
//! The result is always *feasible-verified* (re-checked through
//! [`BindingProblem::verify`]), but may be suboptimal; the
//! `heuristic_quality` bench quantifies the gap against the exact solver.

use crate::binding::{Binding, BindingProblem};
use stbus_traffic::TargetSet;

/// Options for the heuristic search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicOptions {
    /// Maximum accepted improvement moves in local search.
    pub max_moves: usize,
}

impl Default for HeuristicOptions {
    fn default() -> Self {
        Self { max_moves: 10_000 }
    }
}

/// State of a partial/complete assignment with incremental bookkeeping.
struct State<'p> {
    problem: &'p BindingProblem,
    assignment: Vec<Option<usize>>,
    used: Vec<Vec<u64>>,
    members: Vec<Vec<usize>>,
    /// Incremental member bitset per bus, mirroring `members` — conflict
    /// feasibility in `fits` is one word-parallel intersection.
    masks: Vec<TargetSet>,
    bus_overlap: Vec<u64>,
}

impl<'p> State<'p> {
    fn new(problem: &'p BindingProblem) -> Self {
        Self {
            problem,
            assignment: vec![None; problem.num_targets()],
            used: vec![vec![0; problem.num_windows()]; problem.num_buses()],
            members: vec![Vec::new(); problem.num_buses()],
            masks: vec![TargetSet::empty(problem.num_targets()); problem.num_buses()],
            bus_overlap: vec![0; problem.num_buses()],
        }
    }

    /// Whether `t` fits on bus `k` under capacity, conflict and maxtb
    /// constraints.
    fn fits(&self, t: usize, k: usize) -> bool {
        if self.members[k].len() >= self.problem.maxtb() {
            return false;
        }
        if self.problem.conflicts_with_set(t, &self.masks[k]) {
            return false;
        }
        (0..self.problem.num_windows())
            .all(|m| self.used[k][m] + self.problem.demand(t, m) <= self.problem.capacity(m))
    }

    fn added_overlap(&self, t: usize, k: usize) -> u64 {
        self.members[k]
            .iter()
            .map(|&u| self.problem.overlap(t, u))
            .sum()
    }

    fn place(&mut self, t: usize, k: usize) {
        debug_assert!(self.assignment[t].is_none());
        for m in 0..self.problem.num_windows() {
            self.used[k][m] += self.problem.demand(t, m);
        }
        self.bus_overlap[k] += self.added_overlap(t, k);
        self.members[k].push(t);
        self.masks[k].insert(t);
        self.assignment[t] = Some(k);
    }

    fn remove(&mut self, t: usize) -> usize {
        let k = self.assignment[t].take().expect("target placed");
        let pos = self.members[k]
            .iter()
            .position(|&u| u == t)
            .expect("member listed");
        self.members[k].swap_remove(pos);
        self.masks[k].remove(t);
        self.bus_overlap[k] -= self.added_overlap(t, k);
        for m in 0..self.problem.num_windows() {
            self.used[k][m] -= self.problem.demand(t, m);
        }
        k
    }

    fn max_overlap(&self) -> u64 {
        self.bus_overlap.iter().copied().max().unwrap_or(0)
    }

    fn into_binding(self) -> Binding {
        let assignment: Vec<usize> = self
            .assignment
            .iter()
            .map(|a| a.expect("complete assignment"))
            .collect();
        let max = self.max_overlap();
        Binding::from_assignment_with_overlap(assignment, max)
    }
}

/// Runs the greedy construction + local-search heuristic.
///
/// Returns `None` when the construction fails to place every target —
/// which does **not** prove infeasibility (use
/// [`BindingProblem::find_feasible`] for a definitive answer).
#[must_use]
pub fn solve_heuristic(problem: &BindingProblem, options: &HeuristicOptions) -> Option<Binding> {
    let n = problem.num_targets();
    if n == 0 {
        return Some(Binding::from_assignment(Vec::new()));
    }
    let peak = |t: usize| {
        (0..problem.num_windows())
            .map(|m| problem.demand(t, m))
            .max()
            .unwrap_or(0)
    };
    let total = |t: usize| -> u64 {
        (0..problem.num_windows())
            .map(|m| problem.demand(t, m))
            .sum()
    };
    let degree = |t: usize| problem.conflict_graph().degree(t);

    // --- Construction: first-fit-decreasing under several orderings
    //     (greedy packing is order-sensitive; retrying a handful of
    //     orderings recovers most instances a single order misses). ---
    let mut orders: Vec<Vec<usize>> = Vec::new();
    let base: Vec<usize> = (0..n).collect();
    let mut by_peak = base.clone();
    by_peak.sort_by_key(|&t| std::cmp::Reverse((peak(t), total(t))));
    orders.push(by_peak);
    let mut by_degree = base.clone();
    by_degree.sort_by_key(|&t| std::cmp::Reverse((degree(t), peak(t))));
    orders.push(by_degree);
    let mut by_total = base.clone();
    by_total.sort_by_key(|&t| std::cmp::Reverse(total(t)));
    orders.push(by_total);
    // Deterministic shuffles as a last resort.
    let mut state = 0xA24B_AED4_963E_E407u64;
    for _ in 0..4 {
        let mut shuffled = base.clone();
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        orders.push(shuffled);
    }

    let mut st = State::new(problem);
    let mut constructed = false;
    'orders: for order in &orders {
        let mut attempt = State::new(problem);
        for &t in order {
            let best = (0..problem.num_buses())
                .filter(|&k| attempt.fits(t, k))
                .min_by_key(|&k| (attempt.added_overlap(t, k), attempt.members[k].len()));
            match best {
                Some(k) => attempt.place(t, k),
                None => continue 'orders,
            }
        }
        st = attempt;
        constructed = true;
        break;
    }
    if !constructed {
        return None;
    }

    // --- Improvement: relocations and swaps that lower the max overlap. ---
    let mut moves = 0usize;
    loop {
        if moves >= options.max_moves {
            break;
        }
        let current = st.max_overlap();
        if current == 0 {
            break;
        }
        let mut improved = false;

        // Relocate a target off the hottest bus.
        let hottest = (0..problem.num_buses())
            .max_by_key(|&k| st.bus_overlap[k])
            .expect("at least one bus");
        let residents = st.members[hottest].clone();
        'relocate: for t in residents {
            let from = st.remove(t);
            let mut best: Option<(u64, usize)> = None;
            for k in 0..problem.num_buses() {
                if k == from || !st.fits(t, k) {
                    continue;
                }
                st.place(t, k);
                let score = st.max_overlap();
                st.remove(t);
                if score < current && best.is_none_or(|(s, _)| score < s) {
                    best = Some((score, k));
                }
            }
            match best {
                Some((_, k)) => {
                    st.place(t, k);
                    improved = true;
                    moves += 1;
                    break 'relocate;
                }
                None => st.place(t, from),
            }
        }
        if improved {
            continue;
        }

        // Swap a hottest-bus resident with a target elsewhere.
        let residents = st.members[hottest].clone();
        'swap: for t in residents {
            for u in 0..n {
                let ku = st.assignment[u].expect("complete");
                if ku == hottest {
                    continue;
                }
                let kt = st.remove(t);
                let _ = st.remove(u);
                if st.fits(t, ku) && st.fits(u, kt) {
                    st.place(t, ku);
                    st.place(u, kt);
                    if st.max_overlap() < current {
                        improved = true;
                        moves += 1;
                        break 'swap;
                    }
                    let _ = st.remove(t);
                    let _ = st.remove(u);
                }
                st.place(t, kt);
                st.place(u, ku);
            }
        }
        if !improved {
            break;
        }
    }

    let binding = st.into_binding();
    // Never hand out an unverified answer.
    problem
        .verify(&binding)
        .map(|ov| Binding::from_assignment_with_overlap(binding.assignment().to_vec(), ov))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::SolveLimits;

    fn options() -> HeuristicOptions {
        HeuristicOptions::default()
    }

    #[test]
    fn trivial_instances() {
        let p = BindingProblem::new(1, 100, vec![vec![30], vec![40]]);
        let b = solve_heuristic(&p, &options()).expect("feasible");
        assert_eq!(p.verify(&b), Some(b.max_bus_overlap()));

        let empty = BindingProblem::new(2, 100, Vec::new());
        assert!(solve_heuristic(&empty, &options()).is_some());
    }

    #[test]
    fn respects_conflicts_and_capacity() {
        let p = BindingProblem::new(3, 100, vec![vec![60], vec![60], vec![30]]).with_conflict(0, 2);
        let b = solve_heuristic(&p, &options()).expect("feasible");
        assert_ne!(b.bus_of(0), b.bus_of(2));
        assert!(p.verify(&b).is_some());
    }

    #[test]
    fn local_search_improves_overlap() {
        // Two pairs of heavily overlapping targets: the optimum splits
        // them; greedy construction alone already should, but the verified
        // objective must match the exact optimum on this easy instance.
        let mut p = BindingProblem::new(2, 1000, vec![vec![10]; 4]);
        p.set_overlaps(|i, j| match (i, j) {
            (0, 1) => 100,
            (2, 3) => 90,
            _ => 5,
        });
        let heuristic = solve_heuristic(&p, &options()).expect("feasible");
        let exact = p
            .optimize(&SolveLimits::default())
            .unwrap()
            .expect("feasible");
        assert_eq!(heuristic.max_bus_overlap(), exact.max_bus_overlap());
    }

    #[test]
    fn heuristic_close_to_exact_on_random_instances() {
        // Deterministic pseudo-random instances; the heuristic must stay
        // within 2x of the exact optimum and always verify.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..20 {
            let n = 4 + (rand() % 4) as usize;
            let buses = 2 + (rand() % 2) as usize;
            let demands: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..2).map(|_| rand() % 60).collect())
                .collect();
            let mut p = BindingProblem::new(buses, 100, demands);
            let values: Vec<u64> = (0..n * n).map(|_| rand() % 40).collect();
            p.set_overlaps(|i, j| values[i * n + j]);
            let exact = p.optimize(&SolveLimits::default()).unwrap();
            let heuristic = solve_heuristic(&p, &options());
            if let Some(ex) = exact {
                let h = heuristic.unwrap_or_else(|| panic!("case {case}: heuristic missed"));
                assert!(p.verify(&h).is_some());
                assert!(
                    h.max_bus_overlap() <= ex.max_bus_overlap() * 2 + 10,
                    "case {case}: heuristic {} far above exact {}",
                    h.max_bus_overlap(),
                    ex.max_bus_overlap()
                );
            }
        }
    }

    #[test]
    fn scales_to_max_stbus_size() {
        // 32 targets (the largest STbus crossbar), 8 buses: the heuristic
        // must finish fast and verify.
        let demands: Vec<Vec<u64>> = (0..32)
            .map(|t| (0..10).map(|m| ((t * 7 + m * 13) % 25) as u64).collect())
            .collect();
        let mut p = BindingProblem::new(8, 100, demands);
        p.set_overlaps(|i, j| ((i * j) % 30) as u64);
        let b = solve_heuristic(&p, &options()).expect("feasible");
        assert!(p.verify(&b).is_some());
    }
}
