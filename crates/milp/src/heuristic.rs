//! Greedy + local-search heuristic for the binding problem.
//!
//! The exact solvers in [`crate::binding`] are the production path for
//! STbus-scale instances (≤ 32 targets). This module provides a
//! polynomial-time alternative for larger design-space sweeps:
//!
//! 1. **Construction** — first-fit-decreasing over targets (by peak window
//!    demand), choosing among feasible buses the one whose *added overlap*
//!    is smallest (a greedy proxy for the MILP-2 objective);
//! 2. **Repair** — when every greedy construction order fails, a seeded
//!    deterministic annealer searches complete (possibly violating)
//!    assignments for a zero-violation witness. Greedy construction is
//!    order-myopic: near the feasibility phase transition, witnesses
//!    exist that no first-fit order reaches (the 48-target size sweep is
//!    the motivating case — greedy tops out three buses above the true
//!    minimum). The independent seeded restarts run as tasks on the
//!    process-wide executor ([`stbus_exec`]) and the **lowest-indexed**
//!    successful restart is the answer, so the witness is identical to
//!    the sequential restart loop at every worker count. A repaired
//!    witness is verified like any other;
//! 3. **Improvement** — steepest-descent local search over single-target
//!    relocations and pairwise swaps, accepting moves that reduce the
//!    maximum per-bus overlap, until a fixpoint or the move budget runs
//!    out.
//!
//! The whole search is cooperatively cancellable
//! ([`solve_heuristic_cancellable`]): the annealer and the improvement
//! loop poll a [`CancelToken`], so a speculative caller (the phase-3
//! probe scheduler racing the heuristic against the exact search)
//! abandons a pre-pass mid-anneal the moment its answer becomes
//! unconsumable. A cancelled call returns `None` — cancellation is only
//! ever requested for answers that are already irrelevant.
//!
//! The result is always *feasible-verified* (re-checked through
//! [`BindingProblem::verify`]), but may be suboptimal; the
//! `heuristic_quality` bench quantifies the gap against the exact solver.

use crate::binding::{Binding, BindingProblem};
use stbus_exec::CancelToken;
use stbus_traffic::TargetSet;

/// Options for the heuristic search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicOptions {
    /// Maximum accepted improvement moves in local search.
    pub max_moves: usize,
    /// Annealing restarts of the feasibility-repair phase that runs when
    /// every greedy construction order fails. `0` disables repair (the
    /// pre-repair behaviour). Deterministic: fixed seeds per restart and
    /// lowest-successful-index selection, so the heuristic stays
    /// bit-identical across runs and executor worker counts even though
    /// the restarts run as parallel tasks.
    pub repair_restarts: usize,
    /// Annealing steps per repair restart.
    pub repair_steps: usize,
}

impl Default for HeuristicOptions {
    fn default() -> Self {
        Self {
            max_moves: 10_000,
            repair_restarts: 4,
            repair_steps: 200_000,
        }
    }
}

/// State of a partial/complete assignment with incremental bookkeeping.
struct State<'p> {
    problem: &'p BindingProblem,
    assignment: Vec<Option<usize>>,
    used: Vec<Vec<u64>>,
    members: Vec<Vec<usize>>,
    /// Incremental member bitset per bus, mirroring `members` — conflict
    /// feasibility in `fits` is one word-parallel intersection.
    masks: Vec<TargetSet>,
    bus_overlap: Vec<u64>,
}

impl<'p> State<'p> {
    fn new(problem: &'p BindingProblem) -> Self {
        Self {
            problem,
            assignment: vec![None; problem.num_targets()],
            used: vec![vec![0; problem.num_windows()]; problem.num_buses()],
            members: vec![Vec::new(); problem.num_buses()],
            masks: vec![TargetSet::empty(problem.num_targets()); problem.num_buses()],
            bus_overlap: vec![0; problem.num_buses()],
        }
    }

    /// Whether `t` fits on bus `k` under capacity, conflict and maxtb
    /// constraints.
    fn fits(&self, t: usize, k: usize) -> bool {
        if self.members[k].len() >= self.problem.maxtb() {
            return false;
        }
        if self.problem.conflicts_with_set(t, &self.masks[k]) {
            return false;
        }
        (0..self.problem.num_windows())
            .all(|m| self.used[k][m] + self.problem.demand(t, m) <= self.problem.capacity(m))
    }

    fn added_overlap(&self, t: usize, k: usize) -> u64 {
        self.members[k]
            .iter()
            .map(|&u| self.problem.overlap(t, u))
            .sum()
    }

    fn place(&mut self, t: usize, k: usize) {
        debug_assert!(self.assignment[t].is_none());
        for m in 0..self.problem.num_windows() {
            self.used[k][m] += self.problem.demand(t, m);
        }
        self.bus_overlap[k] += self.added_overlap(t, k);
        self.members[k].push(t);
        self.masks[k].insert(t);
        self.assignment[t] = Some(k);
    }

    fn remove(&mut self, t: usize) -> usize {
        let k = self.assignment[t].take().expect("target placed");
        let pos = self.members[k]
            .iter()
            .position(|&u| u == t)
            .expect("member listed");
        self.members[k].swap_remove(pos);
        self.masks[k].remove(t);
        self.bus_overlap[k] -= self.added_overlap(t, k);
        for m in 0..self.problem.num_windows() {
            self.used[k][m] -= self.problem.demand(t, m);
        }
        k
    }

    fn max_overlap(&self) -> u64 {
        self.bus_overlap.iter().copied().max().unwrap_or(0)
    }

    fn into_binding(self) -> Binding {
        let assignment: Vec<usize> = self
            .assignment
            .iter()
            .map(|a| a.expect("complete assignment"))
            .collect();
        let max = self.max_overlap();
        Binding::from_assignment_with_overlap(assignment, max)
    }
}

/// Runs the greedy construction + local-search heuristic.
///
/// Returns `None` when the construction fails to place every target —
/// which does **not** prove infeasibility (use
/// [`BindingProblem::find_feasible`] for a definitive answer).
#[must_use]
pub fn solve_heuristic(problem: &BindingProblem, options: &HeuristicOptions) -> Option<Binding> {
    solve_heuristic_cancellable(problem, options, &CancelToken::new())
}

/// [`solve_heuristic`] with a cooperative [`CancelToken`]: the repair
/// annealer and the improvement loop poll it and return `None` when it
/// (or any ancestor) is raised. `None` therefore means "no witness
/// produced" — either the heuristic genuinely failed or the caller
/// cancelled it; speculative callers cancel only answers they will never
/// consume, so the ambiguity is harmless by construction.
#[must_use]
pub fn solve_heuristic_cancellable(
    problem: &BindingProblem,
    options: &HeuristicOptions,
    cancel: &CancelToken,
) -> Option<Binding> {
    let n = problem.num_targets();
    if n == 0 {
        return Some(Binding::from_assignment(Vec::new()));
    }
    let peak = |t: usize| {
        (0..problem.num_windows())
            .map(|m| problem.demand(t, m))
            .max()
            .unwrap_or(0)
    };
    let total = |t: usize| -> u64 {
        (0..problem.num_windows())
            .map(|m| problem.demand(t, m))
            .sum()
    };
    let degree = |t: usize| problem.conflict_graph().degree(t);

    // --- Construction: first-fit-decreasing under several orderings
    //     (greedy packing is order-sensitive; retrying a handful of
    //     orderings recovers most instances a single order misses). ---
    let mut orders: Vec<Vec<usize>> = Vec::new();
    let base: Vec<usize> = (0..n).collect();
    let mut by_peak = base.clone();
    by_peak.sort_by_key(|&t| std::cmp::Reverse((peak(t), total(t))));
    orders.push(by_peak);
    let mut by_degree = base.clone();
    by_degree.sort_by_key(|&t| std::cmp::Reverse((degree(t), peak(t))));
    orders.push(by_degree);
    let mut by_total = base.clone();
    by_total.sort_by_key(|&t| std::cmp::Reverse(total(t)));
    orders.push(by_total);
    // Deterministic shuffles as a last resort.
    let mut state = 0xA24B_AED4_963E_E407u64;
    for _ in 0..4 {
        let mut shuffled = base.clone();
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        orders.push(shuffled);
    }

    let mut st = State::new(problem);
    let mut constructed = false;
    'orders: for order in &orders {
        if cancel.is_cancelled() {
            return None;
        }
        let mut attempt = State::new(problem);
        for &t in order {
            let best = (0..problem.num_buses())
                .filter(|&k| attempt.fits(t, k))
                .min_by_key(|&k| (attempt.added_overlap(t, k), attempt.members[k].len()));
            match best {
                Some(k) => attempt.place(t, k),
                None => continue 'orders,
            }
        }
        st = attempt;
        constructed = true;
        break;
    }
    if !constructed {
        // Greedy never placed everything: hunt for a witness by annealing
        // repair. A zero-violation assignment is a genuine feasibility
        // certificate whatever produced it.
        let assignment = repair_witness(problem, options, cancel)?;
        let mut repaired = State::new(problem);
        for (t, &k) in assignment.iter().enumerate() {
            debug_assert!(repaired.fits(t, k), "repair returned a violating witness");
            repaired.place(t, k);
        }
        st = repaired;
    }

    // --- Improvement: relocations and swaps that lower the max overlap. ---
    let mut moves = 0usize;
    loop {
        if cancel.is_cancelled() {
            return None;
        }
        if moves >= options.max_moves {
            break;
        }
        let current = st.max_overlap();
        if current == 0 {
            break;
        }
        let mut improved = false;

        // Relocate a target off the hottest bus.
        let hottest = (0..problem.num_buses())
            .max_by_key(|&k| st.bus_overlap[k])
            .expect("at least one bus");
        let residents = st.members[hottest].clone();
        'relocate: for t in residents {
            let from = st.remove(t);
            let mut best: Option<(u64, usize)> = None;
            for k in 0..problem.num_buses() {
                if k == from || !st.fits(t, k) {
                    continue;
                }
                st.place(t, k);
                let score = st.max_overlap();
                st.remove(t);
                if score < current && best.is_none_or(|(s, _)| score < s) {
                    best = Some((score, k));
                }
            }
            match best {
                Some((_, k)) => {
                    st.place(t, k);
                    improved = true;
                    moves += 1;
                    break 'relocate;
                }
                None => st.place(t, from),
            }
        }
        if improved {
            continue;
        }

        // Swap a hottest-bus resident with a target elsewhere.
        let residents = st.members[hottest].clone();
        'swap: for t in residents {
            for u in 0..n {
                let ku = st.assignment[u].expect("complete");
                if ku == hottest {
                    continue;
                }
                let kt = st.remove(t);
                let _ = st.remove(u);
                if st.fits(t, ku) && st.fits(u, kt) {
                    st.place(t, ku);
                    st.place(u, kt);
                    if st.max_overlap() < current {
                        improved = true;
                        moves += 1;
                        break 'swap;
                    }
                    let _ = st.remove(t);
                    let _ = st.remove(u);
                }
                st.place(t, kt);
                st.place(u, ku);
            }
        }
        if !improved {
            break;
        }
    }

    let binding = st.into_binding();
    // Never hand out an unverified answer.
    problem
        .verify(&binding)
        .map(|ov| Binding::from_assignment_with_overlap(binding.assignment().to_vec(), ov))
}

/// Weight of one structural violation (a co-located conflicting pair or
/// one seat over `maxtb`) in the repair annealer's cost — large enough
/// that structural violations always dominate window-overflow cycles.
const REPAIR_VIOLATION: i64 = 1_000_000;

/// Annealing feasibility repair: searches complete (possibly violating)
/// assignments for a zero-violation witness with seeded, deterministic
/// simulated-annealing walks over single-target relocations. The
/// restarts are independent (fixed seed per restart index), so they fan
/// out as tasks on the process-wide executor ([`stbus_exec::scope`]) and
/// the **lowest-indexed** success is consumed — the same witness the
/// sequential restart loop returns, at every worker count; once it is
/// known, the later restarts are cancelled mid-walk. Returns a feasible
/// assignment or `None` when the budget runs out (which, as with greedy
/// construction, proves nothing) or the caller cancelled the repair.
fn repair_witness(
    problem: &BindingProblem,
    options: &HeuristicOptions,
    cancel: &CancelToken,
) -> Option<Vec<usize>> {
    let n = problem.num_targets();
    let buses = problem.num_buses();
    let windows = problem.num_windows();
    let restarts = options.repair_restarts;
    if restarts == 0 || options.repair_steps == 0 || buses < 2 {
        return None;
    }
    // The step budget scales with the move space: a 12-target instance
    // plateaus (or proves nothing more) within thousands of moves, while
    // the 48-target phase-transition witnesses need the full budget.
    let steps = options.repair_steps.min(500 * n * buses);
    let sparse: Vec<Vec<(usize, u64)>> = (0..n)
        .map(|t| {
            (0..windows)
                .map(|m| (m, problem.demand(t, m)))
                .filter(|&(_, d)| d > 0)
                .collect()
        })
        .collect();
    if restarts == 1 {
        return anneal_restart(problem, &sparse, steps, 0, &|| cancel.is_cancelled());
    }
    stbus_exec::scope(|s: &stbus_exec::TaskScope<'_, '_, Option<Vec<usize>>>| {
        for restart in 0..restarts {
            let sparse = &sparse;
            s.submit(move |token| {
                anneal_restart(problem, sparse, steps, restart, &|| {
                    cancel.is_cancelled() || token.is_cancelled()
                })
            });
        }
        for restart in 0..restarts {
            if let Some(witness) = s.take(restart) {
                // A lower-indexed restart succeeded: every later walk's
                // outcome is irrelevant, so stop burning steps on them.
                s.cancel_all();
                return Some(witness);
            }
        }
        None
    })
}

/// One seeded annealing walk of the repair phase. Cost = conflicting
/// co-located pairs and seat excesses (weighted [`REPAIR_VIOLATION`])
/// plus window overflow cycles; every move's delta is evaluated
/// incrementally. `cancelled` is polled every few thousand steps so an
/// abandoned walk returns promptly.
fn anneal_restart(
    problem: &BindingProblem,
    sparse: &[Vec<(usize, u64)>],
    steps: usize,
    restart: usize,
    cancelled: &dyn Fn() -> bool,
) -> Option<Vec<usize>> {
    let n = problem.num_targets();
    let buses = problem.num_buses();
    let windows = problem.num_windows();
    let graph = problem.conflict_graph();
    let maxtb = problem.maxtb();
    let seat_cost =
        |len: usize| -> i64 { (len.saturating_sub(maxtb) as i64).saturating_mul(REPAIR_VIOLATION) };
    let overflow = |load: u64, cap: u64| -> i64 { load.saturating_sub(cap) as i64 };
    let conflict_count = |t: usize, mask: &TargetSet| -> i64 {
        graph
            .row(t)
            .iter()
            .zip(mask.words())
            .map(|(&r, &w)| (r & w).count_ones() as i64)
            .sum()
    };

    let mut state = 0x5EED_C0DE_0000_0001u64 ^ (restart as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut assign: Vec<usize> = (0..n).map(|_| (rand() % buses as u64) as usize).collect();
    let mut loads = vec![vec![0u64; windows]; buses];
    let mut masks = vec![TargetSet::empty(n); buses];
    let mut lens = vec![0usize; buses];
    for (t, &k) in assign.iter().enumerate() {
        for &(m, d) in &sparse[t] {
            loads[k][m] += d;
        }
        masks[k].insert(t);
        lens[k] += 1;
    }
    let mut cost: i64 = 0;
    for k in 0..buses {
        cost += seat_cost(lens[k]);
        for (m, &load) in loads[k].iter().enumerate() {
            cost += overflow(load, problem.capacity(m));
        }
    }
    // Each conflicting co-located pair counted once (rows are
    // symmetric and irreflexive, so the per-target sum double counts).
    let pair_sum: i64 = (0..n).map(|t| conflict_count(t, &masks[assign[t]])).sum();
    cost += (pair_sum / 2).saturating_mul(REPAIR_VIOLATION);

    let mut temperature = 2_000.0f64;
    for step in 0..steps {
        if cost == 0 {
            break;
        }
        // The poll sits outside the move arithmetic and fires every 2048
        // steps: an un-cancelled walk takes exactly the moves the
        // sequential loop took, a cancelled one returns in microseconds.
        if step & 0x7FF == 0 && cancelled() {
            return None;
        }
        let t = (rand() % n as u64) as usize;
        let from = assign[t];
        let to = (rand() % buses as u64) as usize;
        if to == from {
            continue;
        }
        let mut delta = 0i64;
        delta -= conflict_count(t, &masks[from]).saturating_mul(REPAIR_VIOLATION);
        delta += conflict_count(t, &masks[to]).saturating_mul(REPAIR_VIOLATION);
        delta += seat_cost(lens[from] - 1) - seat_cost(lens[from]);
        delta += seat_cost(lens[to] + 1) - seat_cost(lens[to]);
        for &(m, d) in &sparse[t] {
            let cap = problem.capacity(m);
            delta += overflow(loads[to][m] + d, cap) - overflow(loads[to][m], cap);
            delta += overflow(loads[from][m] - d, cap) - overflow(loads[from][m], cap);
        }
        let accept = delta <= 0 || {
            let u = (rand() % 1_000_000) as f64 / 1_000_000.0;
            u < (-(delta as f64) / temperature).exp()
        };
        if accept {
            assign[t] = to;
            masks[from].remove(t);
            masks[to].insert(t);
            lens[from] -= 1;
            lens[to] += 1;
            for &(m, d) in &sparse[t] {
                loads[from][m] -= d;
                loads[to][m] += d;
            }
            cost += delta;
        }
        temperature = (temperature * 0.99997).max(1.0);
        if step % 60_000 == 59_999 {
            // Reheat: escape the local plateaus that trap a cooled
            // walk near (but not at) zero violations.
            temperature = 400.0;
        }
    }
    if cost == 0 {
        debug_assert!(
            problem
                .verify(&Binding::from_assignment(assign.clone()))
                .is_some(),
            "repair cost model disagrees with verify"
        );
        return Some(assign);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::SolveLimits;

    fn options() -> HeuristicOptions {
        HeuristicOptions::default()
    }

    #[test]
    fn trivial_instances() {
        let p = BindingProblem::new(1, 100, vec![vec![30], vec![40]]);
        let b = solve_heuristic(&p, &options()).expect("feasible");
        assert_eq!(p.verify(&b), Some(b.max_bus_overlap()));

        let empty = BindingProblem::new(2, 100, Vec::new());
        assert!(solve_heuristic(&empty, &options()).is_some());
    }

    #[test]
    fn respects_conflicts_and_capacity() {
        let p = BindingProblem::new(3, 100, vec![vec![60], vec![60], vec![30]]).with_conflict(0, 2);
        let b = solve_heuristic(&p, &options()).expect("feasible");
        assert_ne!(b.bus_of(0), b.bus_of(2));
        assert!(p.verify(&b).is_some());
    }

    #[test]
    fn local_search_improves_overlap() {
        // Two pairs of heavily overlapping targets: the optimum splits
        // them; greedy construction alone already should, but the verified
        // objective must match the exact optimum on this easy instance.
        let mut p = BindingProblem::new(2, 1000, vec![vec![10]; 4]);
        p.set_overlaps(|i, j| match (i, j) {
            (0, 1) => 100,
            (2, 3) => 90,
            _ => 5,
        });
        let heuristic = solve_heuristic(&p, &options()).expect("feasible");
        let exact = p
            .optimize(&SolveLimits::default())
            .unwrap()
            .expect("feasible");
        assert_eq!(heuristic.max_bus_overlap(), exact.max_bus_overlap());
    }

    #[test]
    fn heuristic_close_to_exact_on_random_instances() {
        // Deterministic pseudo-random instances; the heuristic must stay
        // within 2x of the exact optimum and always verify.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..20 {
            let n = 4 + (rand() % 4) as usize;
            let buses = 2 + (rand() % 2) as usize;
            let demands: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..2).map(|_| rand() % 60).collect())
                .collect();
            let mut p = BindingProblem::new(buses, 100, demands);
            let values: Vec<u64> = (0..n * n).map(|_| rand() % 40).collect();
            p.set_overlaps(|i, j| values[i * n + j]);
            let exact = p.optimize(&SolveLimits::default()).unwrap();
            let heuristic = solve_heuristic(&p, &options());
            if let Some(ex) = exact {
                let h = heuristic.unwrap_or_else(|| panic!("case {case}: heuristic missed"));
                assert!(p.verify(&h).is_some());
                assert!(
                    h.max_bus_overlap() <= ex.max_bus_overlap() * 2 + 10,
                    "case {case}: heuristic {} far above exact {}",
                    h.max_bus_overlap(),
                    ex.max_bus_overlap()
                );
            }
        }
    }

    #[test]
    fn cancelled_heuristic_returns_none() {
        let p = BindingProblem::new(2, 100, vec![vec![30], vec![40], vec![20]]);
        let token = CancelToken::new();
        token.cancel();
        assert!(solve_heuristic_cancellable(&p, &options(), &token).is_none());
        // The same instance solves under a live token.
        let live = CancelToken::new();
        let b = solve_heuristic_cancellable(&p, &options(), &live).expect("feasible");
        assert!(p.verify(&b).is_some());
    }

    #[test]
    fn scales_to_max_stbus_size() {
        // 32 targets (the largest STbus crossbar), 8 buses: the heuristic
        // must finish fast and verify.
        let demands: Vec<Vec<u64>> = (0..32)
            .map(|t| (0..10).map(|m| ((t * 7 + m * 13) % 25) as u64).collect())
            .collect();
        let mut p = BindingProblem::new(8, 100, demands);
        p.set_overlaps(|i, j| ((i * j) % 30) as u64);
        let b = solve_heuristic(&p, &options()).expect("feasible");
        assert!(p.verify(&b).is_some());
    }
}
