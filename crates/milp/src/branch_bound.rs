//! Generic branch & bound over the binary variables of a [`Model`].
//!
//! Each node solves the LP relaxation with tightened variable bounds
//! ([`BoundOverrides`]); fractional binaries are branched on
//! most-fractional-first. The solver supports a pure *feasibility* mode
//! (the paper's MILP-1 has no objective — Eq. 10) that stops at the first
//! integral solution.

use crate::model::{Model, Sense};
use crate::simplex::{solve_lp, BoundOverrides, LpOutcome, TOL};
use std::sync::Arc;

/// A problem-aware per-node cut: given the variable bounds in force at a
/// node, decide whether its subtree can be discarded without solving the
/// LP relaxation.
///
/// The contract is **admissibility**: `prune` may only return `true` when
/// the subtree provably contains no integer-feasible point. The search
/// then returns the same answer (and, in optimisation mode, the same
/// incumbent) it would have without the cut — pruned subtrees never held
/// a solution, so the exploration of the surviving nodes is unchanged.
/// This is how the combinatorial lower bounds of [`crate::bounds`] reach
/// the generic MILP path, which otherwise only bounds against the
/// incumbent objective (nothing at all in feasibility mode):
/// [`crate::crossbar::clique_cut`] rebuilds the partial target→bus
/// assignment from the fixed binaries and asks the clique-cover and
/// bandwidth-packing bounds whether the node is already dead.
pub trait NodeCut: std::fmt::Debug + Send + Sync {
    /// Returns `true` when the node's subtree certainly contains no
    /// integer-feasible solution.
    fn prune(&self, model: &Model, overrides: &BoundOverrides) -> bool;
}

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Stop at the first integer-feasible solution (MILP-1 style).
    pub feasibility_only: bool,
    /// Hard cap on explored nodes (guards against pathological inputs).
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Optional admissible per-node cut, evaluated before the (far more
    /// expensive) LP relaxation. Pruned nodes still count against
    /// `max_nodes`.
    pub node_cut: Option<Arc<dyn NodeCut>>,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            feasibility_only: false,
            max_nodes: 200_000,
            int_tol: 1e-6,
            node_cut: None,
        }
    }
}

/// Result of a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpOutcome {
    /// Optimal (or first-found, in feasibility mode) integral solution.
    Optimal {
        /// Value per variable.
        values: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// No integral solution exists.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
    /// Node limit exhausted before the search completed.
    NodeLimit,
}

impl MilpOutcome {
    /// The solution values, if optimal.
    #[must_use]
    pub fn values(&self) -> Option<&[f64]> {
        match self {
            MilpOutcome::Optimal { values, .. } => Some(values),
            _ => None,
        }
    }

    /// The objective value, if optimal.
    #[must_use]
    pub fn objective(&self) -> Option<f64> {
        match self {
            MilpOutcome::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }
}

/// Solves the model by branch & bound.
#[must_use]
pub fn solve(model: &Model, options: &MilpOptions) -> MilpOutcome {
    let integer_vars: Vec<usize> = model.integer_vars().iter().map(|v| v.index()).collect();
    let better = |a: f64, b: f64| match model.sense() {
        Sense::Minimize => a < b - TOL,
        Sense::Maximize => a > b + TOL,
    };

    let mut stack: Vec<BoundOverrides> = vec![BoundOverrides::none()];
    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut nodes = 0usize;
    let mut saw_unbounded_root = false;

    while let Some(overrides) = stack.pop() {
        nodes += 1;
        if nodes > options.max_nodes {
            return MilpOutcome::NodeLimit;
        }
        // Combinatorial cut first: it is much cheaper than the simplex
        // solve and admissible by contract, so a cut node behaves exactly
        // like one whose relaxation (or every integral descendant) came
        // back infeasible.
        if let Some(cut) = &options.node_cut {
            if cut.prune(model, &overrides) {
                continue;
            }
        }
        match solve_lp(model, &overrides) {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                if nodes == 1 {
                    saw_unbounded_root = true;
                }
                // An unbounded relaxation of a node with all binaries is
                // only possible through continuous vars; no bound to use —
                // we cannot prune, but branching on binaries may still
                // close it. If no integer vars remain fractional we cannot
                // improve; treat as unbounded overall.
                if integer_vars.is_empty() {
                    return MilpOutcome::Unbounded;
                }
                // Branch on the first unfixed binary to make progress.
                if let Some(&v) = integer_vars.iter().find(|&&v| {
                    let (lb, ub) = effective_bounds(model, &overrides, v);
                    ub - lb > 0.5
                }) {
                    push_children(&mut stack, &overrides, v, 0.0);
                } else if saw_unbounded_root {
                    return MilpOutcome::Unbounded;
                }
                continue;
            }
            LpOutcome::Optimal { values, objective } => {
                // Bound: prune nodes worse than the incumbent.
                if let Some((_, inc_obj)) = &incumbent {
                    if !better(objective, *inc_obj) {
                        continue;
                    }
                }
                // Find most fractional integer variable.
                let mut branch_var: Option<(usize, f64)> = None;
                let mut best_frac = options.int_tol;
                for &v in &integer_vars {
                    let frac = (values[v] - values[v].round()).abs();
                    if frac > best_frac {
                        best_frac = frac;
                        branch_var = Some((v, values[v]));
                    }
                }
                match branch_var {
                    None => {
                        // Integral solution.
                        let rounded: Vec<f64> = values
                            .iter()
                            .enumerate()
                            .map(|(i, &v)| {
                                if integer_vars.contains(&i) {
                                    v.round()
                                } else {
                                    v
                                }
                            })
                            .collect();
                        if options.feasibility_only {
                            return MilpOutcome::Optimal {
                                values: rounded,
                                objective,
                            };
                        }
                        let accept = incumbent
                            .as_ref()
                            .is_none_or(|(_, inc)| better(objective, *inc));
                        if accept {
                            incumbent = Some((rounded, objective));
                        }
                    }
                    Some((v, val)) => {
                        push_children(&mut stack, &overrides, v, val);
                    }
                }
            }
        }
    }

    match incumbent {
        Some((values, objective)) => MilpOutcome::Optimal { values, objective },
        None if saw_unbounded_root => MilpOutcome::Unbounded,
        None => MilpOutcome::Infeasible,
    }
}

fn effective_bounds(model: &Model, overrides: &BoundOverrides, var: usize) -> (f64, f64) {
    let (lb, ub) = model.bounds(crate::model::VarId(var));
    overrides.bounds_for(var, lb, ub)
}

fn push_children(
    stack: &mut Vec<BoundOverrides>,
    overrides: &BoundOverrides,
    var: usize,
    val: f64,
) {
    let floor = val.floor();
    let mut down = overrides.clone();
    down.restrict(var, f64::NEG_INFINITY, floor);
    let mut up = overrides.clone();
    up.restrict(var, floor + 1.0, f64::INFINITY);
    // Explore the side nearest the fractional value first (depth-first).
    if val - floor > 0.5 {
        stack.push(down);
        stack.push(up);
    } else {
        stack.push(up);
        stack.push(down);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LinExpr, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c with 3a + 4b + 2c <= 6 → a+c? values:
        // a+b: w=7 no; a+c: w=5 v=17; b+c: w=6 v=20 → optimum 20.
        let mut m = Model::new(Sense::Maximize);
        let a = m.binary_var("a");
        let b = m.binary_var("b");
        let c = m.binary_var("c");
        m.constrain(
            LinExpr::new().term(a, 3.0).term(b, 4.0).term(c, 2.0),
            Cmp::Le,
            6.0,
        );
        m.set_objective(LinExpr::new().term(a, 10.0).term(b, 13.0).term(c, 7.0));
        let out = solve(&m, &MilpOptions::default());
        assert_close(out.objective().expect("optimal"), 20.0);
        let v = out.values().unwrap();
        assert_close(v[a.index()], 0.0);
        assert_close(v[b.index()], 1.0);
        assert_close(v[c.index()], 1.0);
    }

    #[test]
    fn infeasible_binary_system() {
        // x + y >= 3 with two binaries is impossible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 3.0);
        assert_eq!(solve(&m, &MilpOptions::default()), MilpOutcome::Infeasible);
    }

    #[test]
    fn feasibility_mode_returns_first_integral() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.binary_var("y");
        m.constrain(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 1.0);
        let out = solve(
            &m,
            &MilpOptions {
                feasibility_only: true,
                ..MilpOptions::default()
            },
        );
        let v = out.values().expect("feasible");
        assert!(v[x.index()] + v[y.index()] >= 1.0 - 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min y s.t. y >= 1.5 x, y >= 1.5 (1 - x), y continuous, x binary.
        // Either branch gives y = 1.5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary_var("x");
        let y = m.continuous_var("y", 0.0, 10.0);
        m.constrain(LinExpr::new().term(y, 1.0).term(x, -1.5), Cmp::Ge, 0.0);
        m.constrain(LinExpr::new().term(y, 1.0).term(x, 1.5), Cmp::Ge, 1.5);
        m.set_objective(LinExpr::new().term(y, 1.0));
        let out = solve(&m, &MilpOptions::default());
        assert_close(out.objective().expect("optimal"), 1.5);
    }

    #[test]
    fn equality_partition() {
        // Exactly one of three binaries set (Eq. 3 in miniature).
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..3).map(|i| m.binary_var(format!("x{i}"))).collect();
        let mut sum = LinExpr::new();
        for &v in &vars {
            sum.add_term(v, 1.0);
        }
        m.constrain(sum, Cmp::Eq, 1.0);
        m.set_objective(
            LinExpr::new()
                .term(vars[0], 1.0)
                .term(vars[1], 5.0)
                .term(vars[2], 3.0),
        );
        let out = solve(&m, &MilpOptions::default());
        assert_close(out.objective().expect("optimal"), 5.0);
        assert_close(out.values().unwrap()[vars[1].index()], 1.0);
    }

    #[test]
    fn node_limit_reported() {
        // A deliberately awkward model with a tiny node budget.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| m.binary_var(format!("x{i}"))).collect();
        let mut cap = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            cap.add_term(v, 2.0 + (i % 3) as f64);
            obj.add_term(v, 3.0 + (i % 5) as f64);
        }
        m.constrain(cap, Cmp::Le, 11.0);
        m.set_objective(obj);
        let out = solve(
            &m,
            &MilpOptions {
                max_nodes: 2,
                ..MilpOptions::default()
            },
        );
        assert_eq!(out, MilpOutcome::NodeLimit);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let y = m.continuous_var("y", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().term(y, 1.0));
        assert_eq!(solve(&m, &MilpOptions::default()), MilpOutcome::Unbounded);
    }

    #[test]
    fn solution_is_model_feasible() {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..6).map(|i| m.binary_var(format!("x{i}"))).collect();
        // Cover constraint: every pair among first 4 needs one endpoint.
        for i in 0..4 {
            for j in (i + 1)..4 {
                m.constrain(
                    LinExpr::new().term(vars[i], 1.0).term(vars[j], 1.0),
                    Cmp::Ge,
                    1.0,
                );
            }
        }
        let mut obj = LinExpr::new();
        for &v in &vars {
            obj.add_term(v, 1.0);
        }
        m.set_objective(obj);
        let out = solve(&m, &MilpOptions::default());
        let values = out.values().expect("feasible");
        assert!(m.is_feasible_point(values, 1e-6));
        // Vertex cover of K4 needs 3 vertices.
        assert_close(out.objective().unwrap(), 3.0);
    }
}
