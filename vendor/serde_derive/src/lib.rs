//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace builds offline, so the real serde cannot be fetched. The
//! codebase only *derives* `Serialize`/`Deserialize` (nothing is actually
//! serialised through serde — the trace interchange format in
//! `stbus_traffic::io` is hand-rolled), so the derives can expand to
//! nothing: the companion `serde` stub provides blanket implementations.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
