//! Miniature property-testing harness standing in for `proptest`.
//!
//! The build environment is offline, so the real proptest cannot be
//! fetched. This crate reimplements exactly the subset the workspace's
//! test-suites use — [`Strategy`] with `prop_map`/`prop_flat_map`, integer
//! range strategies, tuple strategies, [`collection::vec`], [`Just`],
//! [`bool::ANY`], the [`proptest!`] macro and the `prop_assert*` family —
//! on top of a deterministic splitmix64 generator. There is no shrinking:
//! a failing case panics with the generated inputs Debug-printed where the
//! assertion formats them. Tests are seeded from the property name, so
//! failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from an arbitrary seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Seeds deterministically from a test name (FNV-1a hash).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        u128::from(self.next_u64()) % bound
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a second strategy from it, and draws from
    /// that strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (API parity with proptest).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn gen(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.gen(rng)).gen(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn gen(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn gen(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything that can describe a vector length.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::gen(self, rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::gen(self, rng)
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.gen(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration (case count only — no shrinking/forking here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Overrides the case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The subset of the proptest prelude the workspace uses.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Module alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (panics with context here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::gen(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = (0u64..100, prop::collection::vec(0usize..10, 1..5));
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(strat.gen(&mut a), strat.gen(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(v in 3u32..9, w in -2i64..=2) {
            prop_assert!((3..9).contains(&v));
            prop_assert!((-2..=2).contains(&w));
        }

        #[test]
        fn flat_map_len(xs in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u8..=255, n))) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
        }
    }
}
