//! Minimal wall-clock benchmarking harness standing in for `criterion`.
//!
//! Offline builds cannot fetch the real crate; this stub keeps the bench
//! targets compiling and producing useful numbers. It implements the API
//! subset the workspace benches use — `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros —
//! reporting min/mean/max wall-clock per iteration. There is no
//! statistical analysis, HTML report, or regression detection.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter` ids like criterion does.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        Self { name: s.clone() }
    }
}

/// Throughput annotation (recorded, displayed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let extra = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{name:<40} [min {min:>12.2?}  mean {mean:>12.2?}  max {max:>12.2?}]{extra}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.name),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.name),
            &b.samples,
            self.throughput,
        );
        self
    }

    /// Ends the group (printing happened eagerly).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report(name, &b.samples, None);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like --bench; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn id_formats() {
        let id = BenchmarkId::new("mat2", 42);
        assert_eq!(id.name, "mat2/42");
    }
}
