//! Deterministic stand-in for the subset of `rand` 0.8 the workspace uses.
//!
//! Offline builds cannot fetch the real crate, and the workload generators
//! only need a seedable RNG with uniform range sampling. [`rngs::StdRng`]
//! here is a splitmix64/xorshift generator rather than ChaCha12, so the
//! *values* differ from upstream rand for the same seed — everything in the
//! workspace treats seeds as opaque reproducibility handles, never as a
//! contract on specific draws, so this is safe.

/// Core RNG abstraction: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling helpers, mirroring the parts of `rand::Rng` in use.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift-style generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scramble so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Self {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* — plenty for workload synthesis.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(3usize..7);
            assert!((3..7).contains(&u));
        }
    }
}
