//! API-compatible stand-in for the `serde` facade.
//!
//! The build environment has no network access, so the real serde cannot
//! be fetched from crates.io. The workspace only uses serde for
//! `#[derive(Serialize, Deserialize)]` markers (no serialisation format is
//! ever invoked), so this stub provides the two traits with blanket
//! implementations and re-exports no-op derive macros. Swapping back to
//! real serde is a one-line Cargo change; no source edits are required.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
